//! Timed harness for the parallel-materialization rework: runs both
//! generators with per-phase timings ([`csb_core::PhaseTimings`]), compares
//! the parallel attach path against the serial per-edge reference, and
//! writes `BENCH_materialize.json` — one point of the perf trajectory per
//! commit. `CSB_SCALE` multiplies the default ~1M-edge workload.

use csb_bench::{
    attach_serial_reference, configured_pool_width, eng, scale, standard_seed, with_pool, Table,
};
use csb_core::pgpba::pgpba_topology;
use csb_core::topo::{attach_properties, Topology};
use csb_core::{pgpba_timed, pgsk_timed, PgpbaConfig, PgskConfig, PhaseTimings};
use csb_obs::json::JsonObject;
use std::collections::BTreeMap;
use std::time::Instant;

fn timing_row(table: &mut Table, t: &PhaseTimings) {
    table.row(&[
        t.generator.to_string(),
        eng(t.edges as f64),
        format!("{:.3}", t.grow.as_secs_f64()),
        format!("{:.3}", t.inflate.as_secs_f64()),
        format!("{:.3}", t.attach.as_secs_f64()),
        format!("{:.3}", t.total().as_secs_f64()),
        eng(t.edges_per_sec()),
    ]);
}

fn main() {
    // Collect spans over the whole harness so the JSON carries a per-phase
    // breakdown alongside the wall-clock PhaseTimings, and sample /proc so
    // the JSON carries the peak RSS of the run.
    csb_obs::reset();
    csb_obs::enable();
    let sampler = csb_obs::Sampler::start(
        csb_obs::recorder::current(),
        std::time::Duration::from_millis(200),
    );
    let seed = standard_seed();
    let target = (1_000_000.0 * scale()) as u64;
    let pgpba_cfg = PgpbaConfig { desired_size: target, fraction: 1.0, seed: 7 };
    let pgsk_cfg = PgskConfig {
        desired_size: target,
        seed: 7,
        kronfit_iterations: 8,
        kronfit_permutation_samples: 200,
    };

    // Every measured section runs inside the pool this harness configures;
    // the width rayon reports *inside* each section is what the JSON
    // records (reading the default pool width at JSON-write time stamped
    // `threads: 1` on runs whose attach demonstrably went multi-worker).
    let pool_width = configured_pool_width();
    let ((_, pgpba_t), pgpba_threads) = with_pool(pool_width, || pgpba_timed(&seed, &pgpba_cfg));
    let ((_, pgsk_t), pgsk_threads) = with_pool(pool_width, || pgsk_timed(&seed, &pgsk_cfg));

    let mut table = Table::new(&[
        "generator",
        "edges",
        "grow_s",
        "inflate_s",
        "attach_s",
        "total_s",
        "edges/s",
    ]);
    timing_row(&mut table, &pgpba_t);
    timing_row(&mut table, &pgsk_t);
    table.print();

    // Head-to-head: serial per-edge reference vs parallel attach on the same
    // PGPBA topology.
    let topo = pgpba_topology(&Topology::of_graph(&seed.graph), &seed.analysis, &pgpba_cfg);
    let t = Instant::now();
    // The serial reference is single-threaded by construction; pin it to a
    // width-1 pool so its recorded width states that.
    let (serial, serial_threads) =
        with_pool(1, || attach_serial_reference(&topo, &seed.analysis.properties, 3));
    let serial_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (parallel, parallel_threads) =
        with_pool(pool_width, || attach_properties(&topo, &seed.analysis.properties, &[], 3));
    let parallel_secs = t.elapsed().as_secs_f64();
    assert_eq!(serial.edge_count(), parallel.edge_count());
    let speedup = serial_secs / parallel_secs.max(1e-9);
    println!(
        "\nattach {} edges: serial {serial_secs:.3}s, parallel {parallel_secs:.3}s \
         ({speedup:.2}x, {parallel_threads} threads)",
        eng(topo.edge_count() as f64),
    );

    // Materialization straight to a sharded compressed store: the same
    // attach stream, written by one worker thread per shard.
    let store_shards: usize = 4;
    let store_codec = csb_store::Compression::Columnar;
    let dir = std::env::temp_dir().join(format!("csb-bench-materialize-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let shard_path = dir.join("materialize.csbshards");
    let t = Instant::now();
    let (store_edges, store_threads) = with_pool(pool_width, || {
        let mut sink = csb_store::ShardedGraphSink::create(&shard_path, store_shards, store_codec)
            .expect("shard sink");
        let edges = csb_core::stream::attach_properties_to_sink(
            &topo,
            &seed.analysis.properties,
            &[],
            3,
            &mut sink,
        )
        .expect("attach to sharded store");
        sink.finish().expect("seal shard set");
        edges
    });
    let store_secs = t.elapsed().as_secs_f64();
    let store_eps = store_edges as f64 / store_secs.max(1e-9);
    println!(
        "materialize to {store_shards}-shard {} store: {} edges in {store_secs:.3}s ({} edges/s)",
        store_codec.name(),
        eng(store_edges as f64),
        eng(store_eps),
    );
    std::fs::remove_dir_all(&dir).ok();

    let samples = sampler.stop();
    let peak_rss = csb_obs::sampler::peak_rss_bytes(&samples);
    let metrics = csb_obs::snapshot_metrics();
    let enc_saved = metrics.counter("store.enc_bytes_saved").unwrap_or(0);
    csb_obs::disable();
    // Aggregate the collected spans per name: count + total busy time.
    let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for s in csb_obs::flush_spans() {
        let e = agg.entry(s.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_micros;
    }
    let mut spans = JsonObject::new();
    for (name, (count, total_micros)) in agg {
        let mut o = JsonObject::new();
        o.u64("count", count).u64("total_micros", total_micros);
        spans.raw(name, &o.finish());
    }

    // See the `BENCH_materialize.json` schema note in crates/bench/src/lib.rs.
    let git_rev = csb_bench::git_rev();
    let mut section_threads = JsonObject::new();
    section_threads
        .u64("pgpba", pgpba_threads as u64)
        .u64("pgsk", pgsk_threads as u64)
        .u64("attach_serial", serial_threads as u64)
        .u64("attach_parallel", parallel_threads as u64)
        .u64("store_write", store_threads as u64);
    let mut root = JsonObject::new();
    root.str("bench", "materialize")
        .str("status", "measured")
        .f64("scale", scale(), 3)
        .u64("threads", pool_width as u64)
        .raw("section_threads", &section_threads.finish())
        .str("os", std::env::consts::OS)
        .str("git_rev", &git_rev)
        .raw("pgpba", &pgpba_t.to_json())
        .raw("pgsk", &pgsk_t.to_json())
        .u64("attach_edges", topo.edge_count() as u64)
        .f64("attach_serial_secs", serial_secs, 6)
        .f64("attach_parallel_secs", parallel_secs, 6)
        .f64("attach_speedup", speedup, 2)
        .u64("store_shards", store_shards as u64)
        .str("store_codec", store_codec.name())
        .u64("store_write_edges", store_edges)
        .f64("store_write_secs", store_secs, 6)
        .f64("store_write_edges_per_sec", store_eps, 1)
        .u64("peak_rss_bytes", peak_rss)
        .u64("store_enc_bytes_saved", enc_saved)
        .raw("spans", &spans.finish());
    let mut json = root.finish();
    json.push('\n');
    std::fs::write("BENCH_materialize.json", &json).expect("write BENCH_materialize.json");
    println!("wrote BENCH_materialize.json");
}
