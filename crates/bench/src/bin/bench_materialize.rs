//! Timed harness for the parallel-materialization rework: runs both
//! generators with per-phase timings ([`csb_core::PhaseTimings`]), compares
//! the parallel attach path against the serial per-edge reference, and
//! writes `BENCH_materialize.json` — one point of the perf trajectory per
//! commit. `CSB_SCALE` multiplies the default ~1M-edge workload.

use csb_bench::{attach_serial_reference, eng, scale, standard_seed, Table};
use csb_core::pgpba::pgpba_topology;
use csb_core::topo::{attach_properties, Topology};
use csb_core::{pgpba_timed, pgsk_timed, PgpbaConfig, PgskConfig, PhaseTimings};
use std::time::Instant;

fn timing_row(table: &mut Table, t: &PhaseTimings) {
    table.row(&[
        t.generator.to_string(),
        eng(t.edges as f64),
        format!("{:.3}", t.grow.as_secs_f64()),
        format!("{:.3}", t.inflate.as_secs_f64()),
        format!("{:.3}", t.attach.as_secs_f64()),
        format!("{:.3}", t.total().as_secs_f64()),
        eng(t.edges_per_sec()),
    ]);
}

fn main() {
    let seed = standard_seed();
    let target = (1_000_000.0 * scale()) as u64;
    let pgpba_cfg = PgpbaConfig { desired_size: target, fraction: 1.0, seed: 7 };
    let pgsk_cfg = PgskConfig {
        desired_size: target,
        seed: 7,
        kronfit_iterations: 8,
        kronfit_permutation_samples: 200,
    };

    let (_, pgpba_t) = pgpba_timed(&seed, &pgpba_cfg);
    let (_, pgsk_t) = pgsk_timed(&seed, &pgsk_cfg);

    let mut table = Table::new(&[
        "generator",
        "edges",
        "grow_s",
        "inflate_s",
        "attach_s",
        "total_s",
        "edges/s",
    ]);
    timing_row(&mut table, &pgpba_t);
    timing_row(&mut table, &pgsk_t);
    table.print();

    // Head-to-head: serial per-edge reference vs parallel attach on the same
    // PGPBA topology.
    let topo = pgpba_topology(&Topology::of_graph(&seed.graph), &seed.analysis, &pgpba_cfg);
    let t = Instant::now();
    let serial = attach_serial_reference(&topo, &seed.analysis.properties, 3);
    let serial_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = attach_properties(&topo, &seed.analysis.properties, &[], 3);
    let parallel_secs = t.elapsed().as_secs_f64();
    assert_eq!(serial.edge_count(), parallel.edge_count());
    let speedup = serial_secs / parallel_secs.max(1e-9);
    println!(
        "\nattach {} edges: serial {serial_secs:.3}s, parallel {parallel_secs:.3}s \
         ({speedup:.2}x, {} threads)",
        eng(topo.edge_count() as f64),
        rayon::current_num_threads(),
    );

    let json = format!(
        "{{\"bench\":\"materialize\",\"status\":\"measured\",\"scale\":{},\"threads\":{},\
         \"pgpba\":{},\"pgsk\":{},\"attach_edges\":{},\"attach_serial_secs\":{serial_secs:.6},\
         \"attach_parallel_secs\":{parallel_secs:.6},\"attach_speedup\":{speedup:.2}}}\n",
        scale(),
        rayon::current_num_threads(),
        pgpba_t.to_json(),
        pgsk_t.to_json(),
        topo.edge_count(),
    );
    std::fs::write("BENCH_materialize.json", &json).expect("write BENCH_materialize.json");
    println!("wrote BENCH_materialize.json");
}
