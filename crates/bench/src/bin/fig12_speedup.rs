//! Figure 12: strong-scaling speedup, 10 -> 60 nodes, at the largest sizes
//! 10 nodes can hold (paper: 9.6B edges PGPBA / 6B edges PGSK). PGPBA is
//! near the ideal line; PGSK scales linearly but below ideal because of its
//! per-iteration distinct() shuffles.

use csb_bench::Table;
use csb_engine::sim::{GenAlgorithm, GenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;
const PGPBA_EDGES: u64 = 9_600_000_000;
const PGSK_EDGES: u64 = 6_000_000_000;

fn main() {
    println!("Figure 12: strong-scaling speedup (PGPBA at 9.6B edges, PGSK at 6B)\n");
    let model = CostModel::default();
    let time = |alg, edges, nodes| {
        SimCluster::new(ClusterConfig::shadow_ii(nodes), model)
            .simulate(&GenJob {
                algorithm: alg,
                edges,
                seed_edges: SEED_EDGES,
                with_properties: true,
            })
            .total_secs
    };
    let ba10 = time(GenAlgorithm::Pgpba { fraction: 2.0 }, PGPBA_EDGES, 10);
    let sk10 = time(GenAlgorithm::Pgsk, PGSK_EDGES, 10);

    let mut t = Table::new(&["nodes", "ideal", "PGPBA speedup", "PGSK speedup"]);
    for nodes in [10, 20, 30, 40, 50, 60] {
        let ba = ba10 / time(GenAlgorithm::Pgpba { fraction: 2.0 }, PGPBA_EDGES, nodes);
        let sk = sk10 / time(GenAlgorithm::Pgsk, PGSK_EDGES, nodes);
        t.row(&[
            nodes.to_string(),
            format!("{:.1}", nodes as f64 / 10.0),
            format!("{ba:.2}"),
            format!("{sk:.2}"),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: PGPBA close to the ideal line; PGSK linear but\n\
         visibly below PGPBA (paper Fig. 12)."
    );
}
