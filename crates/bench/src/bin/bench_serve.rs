//! csb-serve load benchmark: boots an in-process daemon with N worker
//! slots, hammers it with hundreds of concurrent protocol clients each
//! submitting small generate jobs and long-polling for results, and stamps
//! `BENCH_serve.json` with jobs/sec, p50/p99 submit-to-done latency, queue
//! depth, and the zero-lost/zero-duplicated accounting.
//!
//! `--smoke` shrinks the fleet for CI; the schema is identical.

use csb_obs::json::JsonObject;
use csb_serve::{Algorithm, Client, JobSpec, Priority, ServeConfig, Server};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Fields every `BENCH_serve.json` must carry; CI checks the emitted file
/// against this list, so keep it in sync with the schema note in
/// crates/bench/src/lib.rs.
const SCHEMA_FIELDS: [&str; 23] = [
    "bench",
    "status",
    "os",
    "git_rev",
    "workers",
    "clients",
    "jobs_per_client",
    "job_size_edges",
    "jobs_submitted",
    "jobs_done",
    "jobs_failed",
    "jobs_rejected",
    "lost",
    "duplicates",
    "wall_secs",
    "jobs_per_sec",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "max_queue_depth",
    "rejection_rate",
];

fn schema_check(json: &str) {
    csb_obs::json::validate_json(json).expect("BENCH_serve.json is valid JSON");
    for field in SCHEMA_FIELDS {
        assert!(
            json.contains(&format!("\"{field}\":")),
            "BENCH_serve.json is missing field {field:?}"
        );
    }
}

/// The same small deterministic seed graph the serve tests use (32 hosts,
/// 96 flows) — jobs stay tiny so the benchmark measures the daemon, not the
/// generator.
fn write_seed_graph(path: &Path) {
    let mut s = String::from("# csb-graph v1\n");
    for i in 0..32u32 {
        s.push_str(&format!("v\t{i}\t{}\n", 0x0A00_0001 + i));
    }
    for i in 0..96u32 {
        let a = (i * 7) % 32;
        let b = (i * 11 + 1) % 32;
        s.push_str(&format!(
            "e\t{a}\t{b}\t6\t{}\t443\t{}\t{}\t{}\t3\t5\t2\n",
            40_000 + i,
            10 + i,
            100 + i * 3,
            200 + i * 5
        ));
    }
    std::fs::write(path, s).expect("write seed graph");
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

struct ClientOutcome {
    job: String,
    done: bool,
    seq: Option<u64>,
    latency_ms: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, jobs_per_client) = if smoke { (12, 1) } else { (120, 2) };
    let workers = 4usize;
    let job_size: u64 = 2000;

    let dir = std::env::temp_dir().join(format!("csb-bench-serve-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let seed_graph = dir.join("seed.graph");
    write_seed_graph(&seed_graph);

    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.workers = workers;
    // The queue must hold the whole burst: rejection is load shedding, and
    // this benchmark's contract is zero lost jobs.
    cfg.max_queue = clients * jobs_per_client + 16;
    let server = Server::start(cfg).expect("start daemon");
    let addr = server.addr();
    println!(
        "bench_serve: {workers} workers at {addr}, {clients} clients x {jobs_per_client} job(s) \
         of {job_size} edges"
    );

    // Queue-depth poller: samples the scheduler every 20 ms for the
    // high-water mark while the burst is in flight. Scoped threads let the
    // poller borrow the server and the clients report into shared counters.
    let stop_poll = AtomicBool::new(false);
    let max_depth = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let t0 = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            while !stop_poll.load(Ordering::Relaxed) {
                let (_, queued, _, _) = server.scheduler().snapshot();
                max_depth.fetch_max(queued as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut handles = Vec::new();
        for c in 0..clients {
            let seed_graph = &seed_graph;
            let rejected = &rejected;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut client = Client::connect(addr).expect("client connect");
                for j in 0..jobs_per_client {
                    let spec = JobSpec::Generate {
                        algorithm: Algorithm::Pgpba,
                        seed_graph: seed_graph.clone(),
                        size: job_size,
                        fraction: 0.1,
                        seed: (c * 1000 + j + 1) as u64,
                        shards: 0,
                        columnar: false,
                        chunk_records: None,
                    };
                    let t = Instant::now();
                    let job = match client.submit(&spec, Priority::Normal) {
                        Ok(id) => id,
                        Err(e) => {
                            // Admission rejections are counted, not fatal —
                            // the accounting below asserts there were none.
                            eprintln!("client {c}: submit rejected: {e}");
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let v = client
                        .result_wait(&job, Duration::from_secs(600))
                        .expect("job reaches a terminal state");
                    let latency_ms = t.elapsed().as_secs_f64() * 1e3;
                    let done = v.get("state").and_then(|s| s.as_str()) == Some("done");
                    let seq = v.get("done_seq").and_then(|s| s.as_u64());
                    out.push(ClientOutcome { job, done, seq, latency_ms });
                }
                out
            }));
        }
        for h in handles {
            outcomes.extend(h.join().expect("client thread"));
        }
        stop_poll.store(true, Ordering::Relaxed);
        poller.join().expect("poller");
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    // Accounting: every submitted job must be done, exactly once.
    let submitted = outcomes.len() as u64 + rejected.load(Ordering::Relaxed);
    let done = outcomes.iter().filter(|o| o.done).count() as u64;
    let failed = outcomes.len() as u64 - done;
    let mut ids = HashSet::new();
    let mut seqs = HashSet::new();
    let mut duplicates = 0u64;
    for o in &outcomes {
        if !ids.insert(o.job.clone()) {
            duplicates += 1;
        }
        if let Some(seq) = o.seq {
            if !seqs.insert(seq) {
                duplicates += 1;
            }
        }
    }
    let lost = submitted - rejected.load(Ordering::Relaxed) - outcomes.len() as u64;
    let attempted = (clients * jobs_per_client) as u64;
    assert_eq!(submitted, attempted, "every client must account for every attempt");
    assert_eq!(rejected.load(Ordering::Relaxed), 0, "queue was sized for the whole burst");
    assert_eq!(failed, 0, "no job may fail");
    assert_eq!(lost, 0, "no job may be lost");
    assert_eq!(duplicates, 0, "no job id or completion seq may repeat");

    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.latency_ms).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&lat, 0.50);
    let p90 = percentile(&lat, 0.90);
    let p99 = percentile(&lat, 0.99);
    let max = lat.last().copied().unwrap_or(0.0);
    let mean = if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
    let jobs_per_sec = done as f64 / wall_secs.max(1e-9);
    let depth = max_depth.load(Ordering::Relaxed);
    println!(
        "{done} jobs in {wall_secs:.2}s = {jobs_per_sec:.1} jobs/s; latency p50 {p50:.0} ms, \
         p90 {p90:.0} ms, p99 {p99:.0} ms, max {max:.0} ms; peak queue depth {depth}"
    );

    // Graceful drain: the daemon must shut down cleanly under zero pending
    // work after the burst.
    let mut c = Client::connect(addr).expect("shutdown client");
    c.shutdown(true).expect("drain");
    drop(c);
    server.wait();

    let mut root = JsonObject::new();
    root.str("bench", "serve")
        .str("status", if smoke { "smoke" } else { "measured" })
        .str("os", std::env::consts::OS)
        .str("git_rev", &csb_bench::git_rev())
        .u64("workers", workers as u64)
        .u64("clients", clients as u64)
        .u64("jobs_per_client", jobs_per_client as u64)
        .u64("job_size_edges", job_size)
        .u64("jobs_submitted", submitted)
        .u64("jobs_done", done)
        .u64("jobs_failed", failed)
        .u64("jobs_rejected", 0)
        .u64("lost", lost)
        .u64("duplicates", duplicates)
        .f64("wall_secs", wall_secs, 3)
        .f64("jobs_per_sec", jobs_per_sec, 2)
        .f64("p50_ms", p50, 2)
        .f64("p90_ms", p90, 2)
        .f64("p99_ms", p99, 2)
        .f64("max_ms", max, 2)
        .f64("mean_ms", mean, 2)
        .u64("max_queue_depth", depth)
        .f64("rejection_rate", 0.0, 4);
    let json = root.finish();
    schema_check(&json);
    std::fs::write("BENCH_serve.json", format!("{json}\n")).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    std::fs::remove_dir_all(&dir).ok();
}
