//! Ablation (design choice from DESIGN.md): conditional attribute sampling
//! `p(a | IN_BYTES)` vs independent marginal sampling. Conditional sampling
//! is what keeps generated NetFlow attributes mutually consistent; this
//! harness quantifies it by comparing cross-attribute correlations of the
//! seed against both sampling modes.

use csb_bench::{standard_seed, Table};
use csb_core::analysis::PropertyModel;
use csb_graph::EdgeProperties;
use csb_stats::rng::rng_for;
use csb_stats::summary::pearson;

fn correlations(props: &[EdgeProperties]) -> [(String, f64); 3] {
    // log1p compresses the heavy tails so Pearson reflects the bulk.
    let col = |f: &dyn Fn(&EdgeProperties) -> u64| -> Vec<f64> {
        props.iter().map(|p| (f(p) as f64).ln_1p()).collect()
    };
    let in_bytes = col(&|p| p.in_bytes);
    let in_pkts = col(&|p| p.in_pkts);
    let duration = col(&|p| p.duration_ms);
    let out_bytes = col(&|p| p.out_bytes);
    [
        ("IN_BYTES ~ IN_PKTS".into(), pearson(&in_bytes, &in_pkts)),
        ("IN_BYTES ~ DURATION".into(), pearson(&in_bytes, &duration)),
        ("IN_BYTES ~ OUT_BYTES".into(), pearson(&in_bytes, &out_bytes)),
    ]
}

fn main() {
    let seed = standard_seed();
    let model = PropertyModel::from_graph(&seed.graph);
    let n = 50_000;

    let mut rng = rng_for(0xAB1A, 0);
    let conditional: Vec<EdgeProperties> = (0..n).map(|_| model.sample(&mut rng)).collect();
    let independent: Vec<EdgeProperties> =
        (0..n).map(|_| model.sample_independent(&mut rng)).collect();

    println!(
        "Conditional vs independent attribute sampling ({n} samples from a\n\
         {}-edge seed model)\n",
        seed.edge_count()
    );
    let seed_corr = correlations(seed.graph.edge_data());
    let cond_corr = correlations(&conditional);
    let ind_corr = correlations(&independent);

    let mut t = Table::new(&["correlation (log scale)", "seed", "conditional", "independent"]);
    for ((s, c), i) in seed_corr.iter().zip(cond_corr.iter()).zip(ind_corr.iter()) {
        t.row(&[s.0.clone(), format!("{:.3}", s.1), format!("{:.3}", c.1), format!("{:.3}", i.1)]);
    }
    t.print();
    println!(
        "\nExpected: conditional sampling tracks the seed's cross-attribute\n\
         correlations; independent sampling collapses them toward 0 — the\n\
         reason the paper computes p(a | IN_BYTES) in its preliminary steps."
    );
}
