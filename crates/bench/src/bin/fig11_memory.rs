//! Figure 11: per-worker-node memory vs synthetic size on 60 nodes:
//! ~constant (platform overhead, <10 GB) below 1e8 edges, then linear up to
//! ~300 GB/node at 2e10 edges.

use csb_bench::{eng, Table};
use csb_engine::sim::{GenAlgorithm, GenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;

fn main() {
    println!("Figure 11: per-node memory vs size (60 nodes)\n");
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    let mut t = Table::new(&["edges", "PGPBA GB/node", "PGSK GB/node"]);
    let mut edges = 1_000_000u64;
    while edges <= 20_000_000_000 {
        let mem = |alg| {
            sim.simulate(&GenJob {
                algorithm: alg,
                edges,
                seed_edges: SEED_EDGES,
                with_properties: true,
            })
            .memory_per_node_gb
        };
        t.row(&[
            eng(edges as f64),
            format!("{:.1}", mem(GenAlgorithm::Pgpba { fraction: 2.0 })),
            format!("{:.1}", mem(GenAlgorithm::Pgsk)),
        ]);
        edges *= 4;
    }
    t.print();
    println!(
        "\nExpected shape: flat around the ~8 GB platform overhead below 1e8\n\
         edges, then linear growth to ~300 GB/node at 2e10 (paper Fig. 11)."
    );
}
