//! Extended structural comparison (extension experiment): fingerprint the
//! seed and both generators' outputs on the properties beyond
//! degree/PageRank that the paper names for future generation methods
//! (connected components, betweenness) plus clustering.

use csb_bench::{sci, standard_seed, Table};
use csb_core::diagnostics::{structural_gaps, StructuralReport};
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig};

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into())
}

fn main() {
    let seed = standard_seed();
    let target = seed.edge_count() as u64 * 8;
    let ba = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 11 });
    let sk = pgsk(&seed, &PgskConfig::new(target));

    let rs = StructuralReport::of(&seed.graph);
    let rb = StructuralReport::of(&ba);
    let rk = StructuralReport::of(&sk);

    println!("Structural fingerprints (seed vs synthetic)\n");
    let mut t = Table::new(&["metric", "seed", "PGPBA", "PGSK"]);
    let row = |t: &mut Table, name: &str, f: &dyn Fn(&StructuralReport) -> String| {
        t.row(&[name.to_string(), f(&rs), f(&rb), f(&rk)]);
    };
    row(&mut t, "vertices", &|r| r.vertices.to_string());
    row(&mut t, "edges", &|r| r.edges.to_string());
    row(&mut t, "mean degree", &|r| format!("{:.2}", r.mean_degree));
    row(&mut t, "max degree", &|r| r.max_degree.to_string());
    row(&mut t, "power-law alpha", &|r| fmt_opt(r.powerlaw_alpha));
    row(&mut t, "clustering coeff", &|r| format!("{:.4}", r.clustering));
    row(&mut t, "triangles", &|r| r.triangles.to_string());
    row(&mut t, "WCC count", &|r| r.wcc_count.to_string());
    row(&mut t, "largest WCC frac", &|r| format!("{:.3}", r.largest_wcc_fraction));
    row(&mut t, "pagerank top share", &|r| sci(r.pagerank_top_share));
    row(&mut t, "mean betweenness", &|r| format!("{:.1}", r.mean_betweenness));
    row(&mut t, "SCC count", &|r| r.scc_count.to_string());
    row(&mut t, "degeneracy", &|r| r.degeneracy.to_string());
    row(&mut t, "assortativity", &|r| format!("{:.3}", r.assortativity));
    t.print();

    println!("\nRelative gaps vs seed (0 = identical):\n");
    let mut g = Table::new(&["gap", "PGPBA", "PGSK"]);
    let gb = structural_gaps(&rs, &rb);
    let gk = structural_gaps(&rs, &rk);
    g.row(&[
        "mean degree".into(),
        format!("{:.3}", gb.mean_degree),
        format!("{:.3}", gk.mean_degree),
    ]);
    g.row(&[
        "power-law alpha".into(),
        format!("{:.3}", gb.powerlaw_alpha),
        format!("{:.3}", gk.powerlaw_alpha),
    ]);
    g.row(&["clustering".into(), format!("{:.3}", gb.clustering), format!("{:.3}", gk.clustering)]);
    g.row(&[
        "largest WCC frac".into(),
        format!("{:.3}", gb.largest_wcc_fraction),
        format!("{:.3}", gk.largest_wcc_fraction),
    ]);
    g.row(&[
        "pagerank top share".into(),
        format!("{:.3}", gb.pagerank_top_share),
        format!("{:.3}", gk.pagerank_top_share),
    ]);
    g.print();
    println!(
        "\nNote: the generators target degree/PageRank/attributes only; the\n\
         untargeted statistics (clustering, betweenness) quantify what the\n\
         paper's future-work generation methods would additionally preserve."
    );
}
