//! Baseline comparison (extension experiment): score the generic
//! random-graph models the paper's Section II surveys — Erdős-Rényi,
//! Watts-Strogatz, classic BA, Chung-Lu, SBM, R-MAT, BTER — against the
//! seed-driven PGPBA/PGSK on the paper's degree-veracity metric, at matched
//! sizes. Seed-driven generation should win: the baselines match at most
//! coarse statistics (density, a prescribed degree sequence), not the seed's
//! actual distribution shape.

use csb_bench::{eng, sci, standard_seed, Table};
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig};
use csb_models::rmat::RmatParams;
use csb_models::{barabasi_albert, bter, chung_lu, gnm, rmat, sbm, watts_strogatz, ModelGraph};
use csb_stats::veracity::{average_euclidean_distance, ks_distance, NormalizedDistribution};

fn score(seed_degrees: &NormalizedDistribution, degrees: &[u64]) -> f64 {
    average_euclidean_distance(seed_degrees, &NormalizedDistribution::from_u64(degrees))
}

/// Size-independent shape comparison: two-sample KS on the degree samples.
fn ks(seed_degrees: &[u64], degrees: &[u64]) -> f64 {
    let a: Vec<f64> = seed_degrees.iter().map(|&d| d as f64).collect();
    let b: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    ks_distance(&a, &b)
}

fn main() {
    let seed = standard_seed();
    let seed_graph = &seed.graph;
    let seed_degrees: Vec<u64> = seed_graph
        .in_degrees()
        .iter()
        .zip(seed_graph.out_degrees().iter())
        .map(|(a, b)| a + b)
        .collect();
    let seed_dist = NormalizedDistribution::from_u64(&seed_degrees);

    // Matched scale: ~8x the seed.
    let mult = 8u64;
    let n = seed_graph.vertex_count() as u32 * mult as u32;
    let m = seed_graph.edge_count() * mult as usize;
    let avg_out = (m as f64 / n as f64).round().max(1.0) as u32;
    println!(
        "Baseline comparison at matched scale (target ~{} vertices, ~{} edges)\n",
        eng(n as f64),
        eng(m as f64)
    );

    let mut t = Table::new(&["model", "vertices", "edges", "degree veracity", "degree KS"]);
    let mut add = |name: &str, g: &ModelGraph| {
        let degrees = g.total_degrees();
        t.row(&[
            name.to_string(),
            eng(g.num_vertices as f64),
            eng(g.edge_count() as f64),
            sci(score(&seed_dist, &degrees)),
            format!("{:.3}", ks(&seed_degrees, &degrees)),
        ]);
    };

    add("Erdos-Renyi G(n,m)", &gnm(n, m, 1));
    add("Watts-Strogatz", &watts_strogatz(n, avg_out.max(1), 0.1, 2));
    add("classic BA", &barabasi_albert(n, avg_out.max(1), 3));
    // Chung-Lu and BTER get the seed's degree sequence replicated, the best
    // a sequence-driven model can be given.
    let mut replicated: Vec<u64> = Vec::with_capacity(seed_degrees.len() * mult as usize);
    for _ in 0..mult {
        replicated.extend_from_slice(&seed_degrees);
    }
    let weights: Vec<f64> = replicated.iter().map(|&d| d as f64).collect();
    add("Chung-Lu (seed degrees)", &chung_lu(&weights, 4));
    add("BTER (seed degrees)", &bter(&replicated, csb_models::bter::BterParams::default(), 5));
    let half = n / 2;
    add(
        "SBM (2 blocks)",
        &sbm(
            &[half, n - half],
            &[
                vec![
                    1.5 * m as f64 / (n as f64 * n as f64),
                    0.5 * m as f64 / (n as f64 * n as f64),
                ],
                vec![
                    0.5 * m as f64 / (n as f64 * n as f64),
                    1.5 * m as f64 / (n as f64 * n as f64),
                ],
            ],
            6,
        ),
    );
    let scale = (n as f64).log2().ceil() as u32;
    add("R-MAT (graph500)", &rmat(scale, m, RmatParams::graph500(), 7));

    // The seed-driven generators.
    let ba = pgpba(&seed, &PgpbaConfig { desired_size: m as u64, fraction: 0.1, seed: 8 });
    let ba_deg: Vec<u64> =
        ba.in_degrees().iter().zip(ba.out_degrees().iter()).map(|(a, b)| a + b).collect();
    t.row(&[
        "PGPBA (this paper)".into(),
        eng(ba.vertex_count() as f64),
        eng(ba.edge_count() as f64),
        sci(score(&seed_dist, &ba_deg)),
        format!("{:.3}", ks(&seed_degrees, &ba_deg)),
    ]);
    let sk = pgsk(&seed, &PgskConfig::new(m as u64));
    let sk_deg: Vec<u64> =
        sk.in_degrees().iter().zip(sk.out_degrees().iter()).map(|(a, b)| a + b).collect();
    t.row(&[
        "PGSK (this paper)".into(),
        eng(sk.vertex_count() as f64),
        eng(sk.edge_count() as f64),
        sci(score(&seed_dist, &sk_deg)),
        format!("{:.3}", ks(&seed_degrees, &sk_deg)),
    ]);

    t.print();
    println!(
        "\nExpected: the seed-driven generators (and the sequence-driven\n\
         Chung-Lu/BTER, which were handed the seed's own degree sequence)\n\
         match the seed's distribution shape far better than the generic\n\
         ER/WS/BA/SBM/R-MAT models — most visible on the size-independent KS\n\
         column — and only PGPBA/PGSK also generate the nine NetFlow edge\n\
         attributes a property-graph IDS benchmark needs."
    );
}
