//! Property-based tests for the network substrate: PCAP round-tripping of
//! arbitrary packets, filter-parser robustness, and flow-assembly
//! conservation laws.

use csb_net::filter::Filter;
use csb_net::flow::Protocol;
use csb_net::packet::{Packet, TcpFlags};
use csb_net::pcap::{read_pcap, write_pcap};
use csb_net::FlowAssembler;
use proptest::prelude::*;

/// Strategy for arbitrary valid packets.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u64..10_000_000_000,
        1u32..u32::MAX,
        1u32..u32::MAX,
        any::<u16>(),
        any::<u16>(),
        0u8..3,
        any::<u8>(),
        0u32..2_000_000,
    )
        .prop_map(|(ts, src, dst, sport, dport, proto, flags, len)| {
            let protocol = match proto {
                0 => Protocol::Tcp,
                1 => Protocol::Udp,
                _ => Protocol::Icmp,
            };
            Packet {
                ts_micros: ts,
                src_ip: src,
                dst_ip: dst,
                src_port: if protocol == Protocol::Icmp { 0 } else { sport },
                dst_port: if protocol == Protocol::Icmp { 0 } else { dport },
                protocol,
                flags: if protocol == Protocol::Tcp {
                    TcpFlags(flags & 0x1F)
                } else {
                    TcpFlags::empty()
                },
                payload_len: len,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any packet sequence survives the on-disk PCAP format bit-for-bit.
    #[test]
    fn pcap_round_trip(packets in prop::collection::vec(arb_packet(), 0..50)) {
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &packets).expect("write");
        let parsed = read_pcap(&bytes[..]).expect("read");
        prop_assert_eq!(parsed, packets);
    }

    /// The filter parser never panics on arbitrary whitespace-separated
    /// token soup (it may error, never crash).
    #[test]
    fn filter_parser_total(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "tcp", "udp", "icmp", "and", "or", "not", "(", ")", "host",
            "port", "src", "dst", "greater", "less", "80", "10.0.0.1",
            "99999", "banana",
        ]),
        0..12,
    )) {
        let expr = tokens.join(" ");
        let _ = Filter::parse(&expr); // must not panic
    }

    /// Parsed filters partition captures: matches + non-matches == all.
    #[test]
    fn filter_partitions_capture(packets in prop::collection::vec(arb_packet(), 0..60)) {
        let f = Filter::parse("tcp and greater 1000").expect("valid filter");
        let kept = f.apply(&packets);
        let dropped: Vec<Packet> =
            packets.iter().filter(|p| !f.matches(p)).copied().collect();
        prop_assert_eq!(kept.len() + dropped.len(), packets.len());
        for p in kept {
            prop_assert_eq!(p.protocol, Protocol::Tcp);
            prop_assert!(p.payload_len > 1000);
        }
    }

    /// Flow assembly conserves packets and bytes for arbitrary mixes.
    #[test]
    fn assembler_conservation(mut packets in prop::collection::vec(arb_packet(), 1..120)) {
        packets.sort_by_key(|p| p.ts_micros);
        let n = packets.len() as u64;
        let bytes: u64 = packets.iter().map(|p| p.payload_len as u64).sum();
        let flows = FlowAssembler::assemble(&packets);
        prop_assert_eq!(flows.iter().map(|f| f.total_pkts()).sum::<u64>(), n);
        prop_assert_eq!(flows.iter().map(|f| f.total_bytes()).sum::<u64>(), bytes);
        // Every flow's duration fits inside the capture window.
        let span = packets.last().expect("non-empty").ts_micros
            - packets.first().expect("non-empty").ts_micros;
        for f in &flows {
            prop_assert!(f.duration_ms <= span / 1000 + 1);
        }
    }
}
