//! A BPF-style packet-filter expression language.
//!
//! Benchmark users slice captures before seeding ("only the TCP traffic",
//! "only flows touching the DMZ"), so the suite ships a small tcpdump-like
//! filter DSL:
//!
//! ```text
//! expr    := or
//! or      := and ( "or" and )*
//! and     := unary ( "and" unary )*
//! unary   := "not" unary | "(" expr ")" | primitive
//! primitive :=
//!     "tcp" | "udp" | "icmp"
//!   | ("src" | "dst")? "host" IPV4
//!   | ("src" | "dst")? "port" NUMBER
//!   | ("greater" | "less") NUMBER          # payload length
//! ```
//!
//! Examples: `tcp and dst port 80`, `not icmp`, `host 10.0.0.2 or greater 1000`.

use crate::flow::Protocol;
use crate::packet::Packet;
use std::fmt;

/// A compiled filter expression.
///
/// ```
/// use csb_net::Filter;
/// use csb_net::packet::{ip, Packet, TcpFlags};
///
/// let f = Filter::parse("tcp and dst port 80").expect("valid expression");
/// let web = Packet::tcp(0, ip(10, 0, 0, 1), 40000, ip(10, 0, 0, 2), 80, TcpFlags::SYN, 0);
/// let dns = Packet::udp(0, ip(10, 0, 0, 1), 5353, ip(8, 8, 8, 8), 53, 60);
/// assert!(f.matches(&web));
/// assert!(!f.matches(&dns));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Protocol match.
    Proto(Protocol),
    /// Source or destination address equals (None direction = either).
    Host(Option<Direction>, u32),
    /// Source or destination port equals (None direction = either).
    Port(Option<Direction>, u16),
    /// Payload length strictly greater than.
    Greater(u32),
    /// Payload length strictly less than.
    Less(u32),
    /// Negation.
    Not(Box<Filter>),
    /// Conjunction.
    And(Box<Filter>, Box<Filter>),
    /// Disjunction.
    Or(Box<Filter>, Box<Filter>),
}

/// Which endpoint a host/port primitive constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Source endpoint.
    Src,
    /// Destination endpoint.
    Dst,
}

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter error: {}", self.message)
    }
}

impl std::error::Error for FilterError {}

fn err<T>(message: impl Into<String>) -> Result<T, FilterError> {
    Err(FilterError { message: message.into() })
}

impl Filter {
    /// Parses a filter expression.
    pub fn parse(input: &str) -> Result<Filter, FilterError> {
        let tokens: Vec<&str> = input.split_whitespace().collect();
        if tokens.is_empty() {
            return err("empty filter expression");
        }
        let mut p = Parser { tokens, pos: 0 };
        let f = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return err(format!("unexpected trailing input at {:?}", p.tokens[p.pos]));
        }
        Ok(f)
    }

    /// Evaluates the filter against one packet.
    pub fn matches(&self, p: &Packet) -> bool {
        match self {
            Filter::Proto(proto) => p.protocol == *proto,
            Filter::Host(dir, ip) => match dir {
                Some(Direction::Src) => p.src_ip == *ip,
                Some(Direction::Dst) => p.dst_ip == *ip,
                None => p.src_ip == *ip || p.dst_ip == *ip,
            },
            Filter::Port(dir, port) => match dir {
                Some(Direction::Src) => p.src_port == *port,
                Some(Direction::Dst) => p.dst_port == *port,
                None => p.src_port == *port || p.dst_port == *port,
            },
            Filter::Greater(len) => p.payload_len > *len,
            Filter::Less(len) => p.payload_len < *len,
            Filter::Not(inner) => !inner.matches(p),
            Filter::And(a, b) => a.matches(p) && b.matches(p),
            Filter::Or(a, b) => a.matches(p) || b.matches(p),
        }
    }

    /// Filters a packet slice, keeping matches.
    pub fn apply(&self, packets: &[Packet]) -> Vec<Packet> {
        packets.iter().filter(|p| self.matches(p)).copied().collect()
    }
}

struct Parser<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.tokens.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<Filter, FilterError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some("or") {
            self.next();
            let right = self.parse_and()?;
            left = Filter::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Filter, FilterError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some("and") {
            self.next();
            let right = self.parse_unary()?;
            left = Filter::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Filter, FilterError> {
        match self.peek() {
            Some("not") => {
                self.next();
                Ok(Filter::Not(Box::new(self.parse_unary()?)))
            }
            Some("(") => {
                self.next();
                let inner = self.parse_or()?;
                match self.next() {
                    Some(")") => Ok(inner),
                    other => err(format!("expected ), got {other:?}")),
                }
            }
            _ => self.parse_primitive(),
        }
    }

    fn parse_primitive(&mut self) -> Result<Filter, FilterError> {
        let Some(tok) = self.next() else {
            return err("expected a filter primitive, got end of input");
        };
        match tok {
            "tcp" => Ok(Filter::Proto(Protocol::Tcp)),
            "udp" => Ok(Filter::Proto(Protocol::Udp)),
            "icmp" => Ok(Filter::Proto(Protocol::Icmp)),
            "src" | "dst" => {
                let dir = if tok == "src" { Direction::Src } else { Direction::Dst };
                match self.next() {
                    Some("host") => Ok(Filter::Host(Some(dir), self.parse_ip()?)),
                    Some("port") => Ok(Filter::Port(Some(dir), self.parse_num()? as u16)),
                    other => err(format!("expected host/port after {tok}, got {other:?}")),
                }
            }
            "host" => Ok(Filter::Host(None, self.parse_ip()?)),
            "port" => {
                let n = self.parse_num()?;
                if n > u16::MAX as u32 {
                    return err(format!("port {n} out of range"));
                }
                Ok(Filter::Port(None, n as u16))
            }
            "greater" => Ok(Filter::Greater(self.parse_num()?)),
            "less" => Ok(Filter::Less(self.parse_num()?)),
            other => err(format!("unknown primitive {other:?}")),
        }
    }

    fn parse_num(&mut self) -> Result<u32, FilterError> {
        let Some(tok) = self.next() else {
            return err("expected a number, got end of input");
        };
        tok.parse().map_err(|_| FilterError { message: format!("bad number {tok:?}") })
    }

    fn parse_ip(&mut self) -> Result<u32, FilterError> {
        let Some(tok) = self.next() else {
            return err("expected an IPv4 address, got end of input");
        };
        let parts: Vec<&str> = tok.split('.').collect();
        if parts.len() != 4 {
            return err(format!("bad IPv4 address {tok:?}"));
        }
        let mut ip = 0u32;
        for part in parts {
            let octet: u8 = part
                .parse()
                .map_err(|_| FilterError { message: format!("bad IPv4 octet {part:?}") })?;
            ip = (ip << 8) | octet as u32;
        }
        Ok(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ip, TcpFlags};

    fn tcp80() -> Packet {
        Packet::tcp(0, ip(10, 0, 0, 1), 40000, ip(10, 0, 0, 2), 80, TcpFlags::SYN, 500)
    }

    fn udp53() -> Packet {
        Packet::udp(0, ip(10, 0, 0, 3), 5353, ip(8, 8, 8, 8), 53, 60)
    }

    #[test]
    fn protocol_primitives() {
        assert!(Filter::parse("tcp").expect("parse").matches(&tcp80()));
        assert!(!Filter::parse("udp").expect("parse").matches(&tcp80()));
        assert!(Filter::parse("udp").expect("parse").matches(&udp53()));
    }

    #[test]
    fn host_and_port_with_directions() {
        let p = tcp80();
        assert!(Filter::parse("host 10.0.0.1").expect("parse").matches(&p));
        assert!(Filter::parse("src host 10.0.0.1").expect("parse").matches(&p));
        assert!(!Filter::parse("dst host 10.0.0.1").expect("parse").matches(&p));
        assert!(Filter::parse("dst port 80").expect("parse").matches(&p));
        assert!(!Filter::parse("src port 80").expect("parse").matches(&p));
        assert!(Filter::parse("port 80").expect("parse").matches(&p));
    }

    #[test]
    fn length_primitives() {
        assert!(Filter::parse("greater 400").expect("parse").matches(&tcp80()));
        assert!(!Filter::parse("greater 500").expect("parse").matches(&tcp80()));
        assert!(Filter::parse("less 100").expect("parse").matches(&udp53()));
    }

    #[test]
    fn boolean_combinators_and_precedence() {
        let p = tcp80();
        assert!(Filter::parse("tcp and dst port 80").expect("parse").matches(&p));
        assert!(!Filter::parse("tcp and dst port 443").expect("parse").matches(&p));
        assert!(Filter::parse("udp or dst port 80").expect("parse").matches(&p));
        assert!(Filter::parse("not udp").expect("parse").matches(&p));
        // and binds tighter than or: (udp and port 99) or tcp == true.
        assert!(Filter::parse("udp and port 99 or tcp").expect("parse").matches(&p));
        // Parentheses override: udp and (port 99 or tcp) == false.
        assert!(!Filter::parse("udp and ( port 99 or tcp )").expect("parse").matches(&p));
    }

    #[test]
    fn apply_filters_a_capture() {
        let packets = vec![tcp80(), udp53(), tcp80()];
        let out = Filter::parse("tcp").expect("parse").apply(&packets);
        assert_eq!(out.len(), 2);
        let out = Filter::parse("not tcp").expect("parse").apply(&packets);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "bogus",
            "port",
            "port notanumber",
            "port 99999",
            "host 1.2.3",
            "host 1.2.3.999",
            "tcp and",
            "( tcp",
            "tcp )",
            "src banana 1",
        ] {
            assert!(Filter::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn double_negation() {
        assert!(Filter::parse("not not tcp").expect("parse").matches(&tcp80()));
    }
}
