//! TCP connection state machine.
//!
//! Tracks the handshake/teardown of one connection from the originator's
//! perspective and reports a Bro-style [`TcpConnState`]. The assembler feeds
//! it one packet at a time with the direction already resolved.

use crate::flow::TcpConnState;
use crate::packet::TcpFlags;

/// Direction of a packet relative to the connection originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Originator -> responder.
    Out,
    /// Responder -> originator.
    In,
}

/// Incremental TCP connection tracker.
#[derive(Debug, Clone, Default)]
pub struct TcpTracker {
    syn_seen: bool,
    syn_ack_seen: bool,
    orig_fin: bool,
    resp_fin: bool,
    orig_rst: bool,
    resp_rst: bool,
    /// RST arrived before the handshake completed (rejection).
    rst_pre_established: bool,
}

impl TcpTracker {
    /// Fresh tracker (no packets observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one packet's flags in the given direction.
    pub fn observe(&mut self, dir: Direction, flags: TcpFlags) {
        let established = self.syn_seen && self.syn_ack_seen;
        match dir {
            Direction::Out => {
                if flags.is_syn_only() {
                    self.syn_seen = true;
                }
                if flags.contains(TcpFlags::FIN) {
                    self.orig_fin = true;
                }
                if flags.contains(TcpFlags::RST) {
                    self.orig_rst = true;
                    if !established {
                        self.rst_pre_established = true;
                    }
                }
            }
            Direction::In => {
                if flags.is_syn_ack() {
                    self.syn_ack_seen = true;
                }
                if flags.contains(TcpFlags::FIN) {
                    self.resp_fin = true;
                }
                if flags.contains(TcpFlags::RST) {
                    self.resp_rst = true;
                    if !established {
                        self.rst_pre_established = true;
                    }
                }
            }
        }
    }

    /// Final Bro-style connection state given everything observed so far.
    pub fn state(&self) -> TcpConnState {
        let established = self.syn_seen && self.syn_ack_seen;
        if self.syn_seen && self.resp_rst && self.rst_pre_established {
            // SYN answered by RST: rejection.
            return TcpConnState::Rej;
        }
        if established {
            if self.orig_rst {
                return TcpConnState::Rsto;
            }
            if self.resp_rst {
                return TcpConnState::Rstr;
            }
            if self.orig_fin && self.resp_fin {
                return TcpConnState::Sf;
            }
            return TcpConnState::S1;
        }
        if self.syn_seen {
            if self.orig_fin {
                // SYN then FIN from originator with no responder activity.
                return TcpConnState::Sh;
            }
            return TcpConnState::S0;
        }
        TcpConnState::Oth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(events: &[(Direction, TcpFlags)]) -> TcpConnState {
        let mut t = TcpTracker::new();
        for &(d, f) in events {
            t.observe(d, f);
        }
        t.state()
    }

    #[test]
    fn unanswered_syn_is_s0() {
        assert_eq!(run(&[(Direction::Out, TcpFlags::SYN)]), TcpConnState::S0);
    }

    #[test]
    fn handshake_only_is_s1() {
        assert_eq!(
            run(&[
                (Direction::Out, TcpFlags::SYN),
                (Direction::In, TcpFlags::SYN_ACK),
                (Direction::Out, TcpFlags::ACK),
            ]),
            TcpConnState::S1
        );
    }

    #[test]
    fn full_connection_is_sf() {
        assert_eq!(
            run(&[
                (Direction::Out, TcpFlags::SYN),
                (Direction::In, TcpFlags::SYN_ACK),
                (Direction::Out, TcpFlags::ACK),
                (Direction::Out, TcpFlags::PSH | TcpFlags::ACK),
                (Direction::In, TcpFlags::PSH | TcpFlags::ACK),
                (Direction::Out, TcpFlags::FIN | TcpFlags::ACK),
                (Direction::In, TcpFlags::FIN | TcpFlags::ACK),
            ]),
            TcpConnState::Sf
        );
    }

    #[test]
    fn syn_answered_by_rst_is_rej() {
        assert_eq!(
            run(&[(Direction::Out, TcpFlags::SYN), (Direction::In, TcpFlags::RST | TcpFlags::ACK)]),
            TcpConnState::Rej
        );
    }

    #[test]
    fn originator_abort_is_rsto() {
        assert_eq!(
            run(&[
                (Direction::Out, TcpFlags::SYN),
                (Direction::In, TcpFlags::SYN_ACK),
                (Direction::Out, TcpFlags::RST),
            ]),
            TcpConnState::Rsto
        );
    }

    #[test]
    fn responder_abort_is_rstr() {
        assert_eq!(
            run(&[
                (Direction::Out, TcpFlags::SYN),
                (Direction::In, TcpFlags::SYN_ACK),
                (Direction::Out, TcpFlags::ACK),
                (Direction::In, TcpFlags::RST),
            ]),
            TcpConnState::Rstr
        );
    }

    #[test]
    fn half_open_scan_is_sh() {
        assert_eq!(
            run(&[(Direction::Out, TcpFlags::SYN), (Direction::Out, TcpFlags::FIN)]),
            TcpConnState::Sh
        );
    }

    #[test]
    fn midstream_traffic_is_oth() {
        assert_eq!(run(&[(Direction::Out, TcpFlags::PSH | TcpFlags::ACK)]), TcpConnState::Oth);
        assert_eq!(run(&[]), TcpConnState::Oth);
    }
}
