//! Enterprise network traffic simulator.
//!
//! Stands in for the unavailable SMIA 2011 seed trace: generates a
//! PCAP-compatible packet stream whose flow-level statistics (heavy-tailed
//! host popularity, log-normal flow sizes/durations, realistic protocol and
//! port mixes) exercise the same seed-analysis pipeline the paper runs on the
//! real trace. Attack injectors add labeled malicious traffic for the
//! Section IV detector.
//!
//! The simulator is deterministic given its seed.

pub mod attacks;
pub mod campaign;
pub mod profiles;
pub mod sim;
pub mod topology;

pub use attacks::AttackInjector;
pub use campaign::{Campaign, CampaignConfig, CampaignRun, StageAction, StageKind, StageParams};
pub use profiles::{AppProfile, ProfileCatalog};
pub use sim::{TrafficSim, TrafficSimConfig};
pub use topology::{Topology, TopologyConfig};
