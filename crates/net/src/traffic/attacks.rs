//! Attack traffic injectors with ground-truth labels.
//!
//! Each injector reproduces the traffic signature the Section IV detector
//! keys on: SYN floods (many small SYNs to one port), ICMP/UDP/TCP floods
//! (high bandwidth, low per-flow variance), DDoS (many sources), host scans
//! (many destination ports, ~40-byte probes), and network scans (many
//! destination IPs on one port).

use crate::packet::{ip, Packet, TcpFlags};
use crate::trace::{AttackKind, AttackLabel, Trace};
use csb_stats::rng::rng_for;
use rand::Rng;

/// Builder for labeled attack traffic. All times are microseconds since the
/// trace epoch.
#[derive(Debug)]
pub struct AttackInjector {
    seed: u64,
    stream: u64,
}

impl AttackInjector {
    /// Creates an injector; `seed` controls all randomness.
    pub fn new(seed: u64) -> Self {
        AttackInjector { seed, stream: 0x4747 }
    }

    fn next_rng(&mut self) -> rand::rngs::SmallRng {
        self.stream += 1;
        rng_for(self.seed, self.stream)
    }

    /// TCP SYN flood: `count` bare SYNs from spoofed ephemeral ports to one
    /// victim port; the victim answers a fraction with SYN-ACK then gives up.
    pub fn syn_flood(
        &mut self,
        attacker: u32,
        victim: u32,
        victim_port: u16,
        start: u64,
        duration_micros: u64,
        count: usize,
    ) -> Trace {
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let step = (duration_micros / count.max(1) as u64).max(1);
        for i in 0..count {
            let ts = start + i as u64 * step;
            let sport = rng.gen_range(1024..65535);
            t.packets.push(Packet::tcp(ts, attacker, sport, victim, victim_port, TcpFlags::SYN, 0));
            // Victim backlog answers ~10% before saturating.
            if rng.gen::<f64>() < 0.1 {
                t.packets.push(Packet::tcp(
                    ts + 200,
                    victim,
                    victim_port,
                    attacker,
                    sport,
                    TcpFlags::SYN_ACK,
                    0,
                ));
            }
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::SynFlood,
            attacker,
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// ICMP echo flood: large pings at line rate.
    pub fn icmp_flood(
        &mut self,
        attacker: u32,
        victim: u32,
        start: u64,
        duration_micros: u64,
        count: usize,
    ) -> Trace {
        let mut t = Trace::new();
        let step = (duration_micros / count.max(1) as u64).max(1);
        for i in 0..count {
            t.packets.push(Packet::icmp(start + i as u64 * step, attacker, victim, 1400));
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::IcmpFlood,
            attacker,
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// UDP flood toward random high ports.
    pub fn udp_flood(
        &mut self,
        attacker: u32,
        victim: u32,
        start: u64,
        duration_micros: u64,
        count: usize,
    ) -> Trace {
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let step = (duration_micros / count.max(1) as u64).max(1);
        for i in 0..count {
            let sport = rng.gen_range(1024..65535);
            let dport = rng.gen_range(1024..65535);
            t.packets.push(Packet::udp(
                start + i as u64 * step,
                attacker,
                sport,
                victim,
                dport,
                1400,
            ));
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::UdpFlood,
            attacker,
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Generic TCP flood: established-looking large segments on one port.
    pub fn tcp_flood(
        &mut self,
        attacker: u32,
        victim: u32,
        victim_port: u16,
        start: u64,
        duration_micros: u64,
        count: usize,
    ) -> Trace {
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let step = (duration_micros / count.max(1) as u64).max(1);
        for i in 0..count {
            let sport = rng.gen_range(1024..65535);
            t.packets.push(Packet::tcp(
                start + i as u64 * step,
                attacker,
                sport,
                victim,
                victim_port,
                TcpFlags::PSH | TcpFlags::ACK,
                1400,
            ));
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::TcpFlood,
            attacker,
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Distributed SYN flood from `bots` distinct sources. The label's
    /// `attacker` is the first bot.
    #[allow(clippy::too_many_arguments)]
    pub fn ddos(
        &mut self,
        bots: &[u32],
        victim: u32,
        victim_port: u16,
        start: u64,
        duration_micros: u64,
        packets_per_bot: usize,
    ) -> Trace {
        assert!(!bots.is_empty(), "ddos needs at least one bot");
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let total = bots.len() * packets_per_bot;
        let step = (duration_micros / total.max(1) as u64).max(1);
        for i in 0..total {
            let bot = bots[i % bots.len()];
            let sport = rng.gen_range(1024..65535);
            t.packets.push(Packet::tcp(
                start + i as u64 * step,
                bot,
                sport,
                victim,
                victim_port,
                TcpFlags::SYN,
                0,
            ));
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::Ddos,
            attacker: bots[0],
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Host scan: probe `ports` consecutive ports on one victim with small
    /// SYNs; closed ports answer RST.
    #[allow(clippy::too_many_arguments)]
    pub fn host_scan(
        &mut self,
        attacker: u32,
        victim: u32,
        start: u64,
        duration_micros: u64,
        ports: u16,
        open_every: u16,
    ) -> Trace {
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let step = (duration_micros / ports.max(1) as u64).max(1);
        for i in 0..ports {
            let ts = start + i as u64 * step;
            let dport = 1 + i;
            let sport = rng.gen_range(32768..61000);
            t.packets.push(Packet::tcp(ts, attacker, sport, victim, dport, TcpFlags::SYN, 0));
            if open_every > 0 && i % open_every == 0 {
                t.packets.push(Packet::tcp(
                    ts + 150,
                    victim,
                    dport,
                    attacker,
                    sport,
                    TcpFlags::SYN_ACK,
                    0,
                ));
                t.packets.push(Packet::tcp(
                    ts + 300,
                    attacker,
                    sport,
                    victim,
                    dport,
                    TcpFlags::RST,
                    0,
                ));
            } else {
                t.packets.push(Packet::tcp(
                    ts + 150,
                    victim,
                    dport,
                    attacker,
                    sport,
                    TcpFlags::RST | TcpFlags::ACK,
                    0,
                ));
            }
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::HostScan,
            attacker,
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Smurf amplification: echo requests spoofed from the victim to every
    /// reflector, each answering with a (larger) reply to the victim. The
    /// trace contains both the spoofed requests and the amplified replies.
    #[allow(clippy::too_many_arguments)]
    pub fn smurf(
        &mut self,
        victim: u32,
        reflectors: &[u32],
        start: u64,
        duration_micros: u64,
        rounds: usize,
    ) -> Trace {
        assert!(!reflectors.is_empty(), "smurf needs reflectors");
        let mut t = Trace::new();
        let total = rounds * reflectors.len();
        let step = (duration_micros / total.max(1) as u64).max(1);
        let mut ts = start;
        for _ in 0..rounds {
            for &r in reflectors {
                // Spoofed request "from" the victim...
                t.packets.push(Packet::icmp(ts, victim, r, 64));
                // ...and the reflected reply flooding it.
                t.packets.push(Packet::icmp(ts + 150, r, victim, 1400));
                ts += step;
            }
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::Smurf,
            attacker: reflectors[0],
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Fraggle: the UDP echo (port 7) variant of Smurf.
    #[allow(clippy::too_many_arguments)]
    pub fn fraggle(
        &mut self,
        victim: u32,
        reflectors: &[u32],
        start: u64,
        duration_micros: u64,
        rounds: usize,
    ) -> Trace {
        assert!(!reflectors.is_empty(), "fraggle needs reflectors");
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let total = rounds * reflectors.len();
        let step = (duration_micros / total.max(1) as u64).max(1);
        let mut ts = start;
        for _ in 0..rounds {
            for &r in reflectors {
                let sport = rng.gen_range(1024..65535);
                t.packets.push(Packet::udp(ts, victim, sport, r, 7, 64));
                t.packets.push(Packet::udp(ts + 150, r, 7, victim, sport, 1024));
                ts += step;
            }
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::Fraggle,
            attacker: reflectors[0],
            victim,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }

    /// Network scan: probe one port across a /24-style range of addresses.
    /// `subnet_base` is the first scanned address.
    #[allow(clippy::too_many_arguments)]
    pub fn network_scan(
        &mut self,
        attacker: u32,
        subnet_base: u32,
        hosts: u16,
        port: u16,
        start: u64,
        duration_micros: u64,
    ) -> Trace {
        let mut rng = self.next_rng();
        let mut t = Trace::new();
        let step = (duration_micros / hosts.max(1) as u64).max(1);
        for i in 0..hosts {
            let ts = start + i as u64 * step;
            let victim = subnet_base + i as u32;
            let sport = rng.gen_range(32768..61000);
            t.packets.push(Packet::tcp(ts, attacker, sport, victim, port, TcpFlags::SYN, 0));
            // Most hosts silently drop; a few answer RST.
            if rng.gen::<f64>() < 0.3 {
                t.packets.push(Packet::tcp(
                    ts + 150,
                    victim,
                    port,
                    attacker,
                    sport,
                    TcpFlags::RST | TcpFlags::ACK,
                    0,
                ));
            }
        }
        t.labels.push(AttackLabel {
            kind: AttackKind::NetworkScan,
            attacker,
            victim: subnet_base,
            start_micros: start,
            end_micros: start + duration_micros,
        });
        t
    }
}

/// A convenient default attacker address outside every topology class.
pub const DEFAULT_ATTACKER: u32 = ip(198, 51, 100, 66);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::FlowAssembler;
    use crate::flow::{Protocol, TcpConnState};
    use std::collections::HashSet;

    const V: u32 = ip(10, 0, 0, 5);

    #[test]
    fn syn_flood_produces_many_s0_flows() {
        let mut inj = AttackInjector::new(1);
        let mut trace = inj.syn_flood(DEFAULT_ATTACKER, V, 80, 0, 1_000_000, 500);
        trace.sort();
        let flows = FlowAssembler::assemble(&trace.packets);
        let s0 = flows.iter().filter(|f| f.state == TcpConnState::S0).count();
        assert!(s0 > 400, "expected mostly S0 flows, got {s0} of {}", flows.len());
        assert!(flows.iter().all(|f| f.dst_port == 80 || f.src_port == 80));
        assert_eq!(trace.labels[0].kind, AttackKind::SynFlood);
    }

    #[test]
    fn icmp_flood_is_heavy() {
        let mut inj = AttackInjector::new(2);
        let trace = inj.icmp_flood(DEFAULT_ATTACKER, V, 0, 1_000_000, 300);
        assert_eq!(trace.packets.len(), 300);
        assert!(trace.packets.iter().all(|p| p.protocol == Protocol::Icmp));
        assert!(trace.packets.iter().all(|p| p.payload_len == 1400));
    }

    #[test]
    fn host_scan_covers_ports() {
        let mut inj = AttackInjector::new(3);
        let mut trace = inj.host_scan(DEFAULT_ATTACKER, V, 0, 2_000_000, 200, 50);
        trace.sort();
        let ports: HashSet<u16> = trace
            .packets
            .iter()
            .filter(|p| p.src_ip == DEFAULT_ATTACKER && p.flags.is_syn_only())
            .map(|p| p.dst_port)
            .collect();
        assert_eq!(ports.len(), 200);
        let flows = FlowAssembler::assemble(&trace.packets);
        let rej = flows.iter().filter(|f| f.state == TcpConnState::Rej).count();
        assert!(rej > 150, "most probes should be rejected, got {rej}");
    }

    #[test]
    fn network_scan_covers_hosts() {
        let mut inj = AttackInjector::new(4);
        let trace = inj.network_scan(DEFAULT_ATTACKER, ip(10, 2, 0, 1), 100, 22, 0, 1_000_000);
        let victims: HashSet<u32> = trace
            .packets
            .iter()
            .filter(|p| p.src_ip == DEFAULT_ATTACKER)
            .map(|p| p.dst_ip)
            .collect();
        assert_eq!(victims.len(), 100);
        assert!(trace
            .packets
            .iter()
            .filter(|p| p.src_ip == DEFAULT_ATTACKER)
            .all(|p| p.dst_port == 22));
    }

    #[test]
    fn ddos_uses_all_bots() {
        let bots: Vec<u32> = (0..10).map(|i| ip(198, 51, 100, i + 1)).collect();
        let mut inj = AttackInjector::new(5);
        let trace = inj.ddos(&bots, V, 443, 0, 1_000_000, 20);
        let sources: HashSet<u32> = trace.packets.iter().map(|p| p.src_ip).collect();
        assert_eq!(sources.len(), 10);
        assert_eq!(trace.packets.len(), 200);
        assert_eq!(trace.labels[0].kind, AttackKind::Ddos);
    }

    #[test]
    fn smurf_amplifies_toward_victim() {
        let reflectors: Vec<u32> = (0..50).map(|i| ip(10, 4, 0, i + 1)).collect();
        let mut inj = AttackInjector::new(7);
        let trace = inj.smurf(V, &reflectors, 0, 2_000_000, 10);
        // Replies to the victim dwarf the spoofed requests in bytes.
        let to_victim: u64 =
            trace.packets.iter().filter(|p| p.dst_ip == V).map(|p| p.payload_len as u64).sum();
        let from_victim: u64 =
            trace.packets.iter().filter(|p| p.src_ip == V).map(|p| p.payload_len as u64).sum();
        assert!(to_victim > from_victim * 10, "amplification {to_victim} vs {from_victim}");
        assert_eq!(trace.labels[0].kind, AttackKind::Smurf);
        assert!(trace.packets.iter().all(|p| p.protocol == Protocol::Icmp));
    }

    #[test]
    fn fraggle_is_udp_echo() {
        let reflectors: Vec<u32> = (0..20).map(|i| ip(10, 4, 0, i + 1)).collect();
        let mut inj = AttackInjector::new(8);
        let trace = inj.fraggle(V, &reflectors, 0, 1_000_000, 5);
        assert!(trace.packets.iter().all(|p| p.protocol == Protocol::Udp));
        assert!(trace.packets.iter().filter(|p| p.dst_ip != V).all(|p| p.dst_port == 7));
        assert_eq!(trace.labels[0].kind, AttackKind::Fraggle);
    }

    #[test]
    fn injectors_are_deterministic() {
        let t1 = AttackInjector::new(9).syn_flood(1, 2, 80, 0, 1000, 50);
        let t2 = AttackInjector::new(9).syn_flood(1, 2, 80, 0, 1000, 50);
        assert_eq!(t1.packets, t2.packets);
    }

    #[test]
    fn udp_and_tcp_floods_label_windows() {
        let mut inj = AttackInjector::new(6);
        let u = inj.udp_flood(DEFAULT_ATTACKER, V, 500, 1_000_000, 100);
        assert_eq!(u.labels[0].start_micros, 500);
        assert_eq!(u.labels[0].end_micros, 1_000_500);
        let t = inj.tcp_flood(DEFAULT_ATTACKER, V, 80, 0, 1_000_000, 100);
        assert!(t.packets.iter().all(|p| p.payload_len == 1400));
    }
}
