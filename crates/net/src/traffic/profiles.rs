//! Application traffic profiles: per-protocol session shapes.
//!
//! Each profile describes one application's flow statistics (request/response
//! sizes, duration, packet sizing) with log-normal bodies — the standard
//! model for Internet flow sizes. The catalog mixes profiles with realistic
//! weights.

use crate::flow::Protocol;
use csb_stats::{AliasTable, LogNormal};
use rand::Rng;

/// One application's session shape.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Human-readable name ("http", "dns", ...).
    pub name: &'static str,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Server port.
    pub port: u16,
    /// Originator->responder body size distribution (bytes).
    pub request_bytes: LogNormal,
    /// Responder->originator body size distribution (bytes).
    pub response_bytes: LogNormal,
    /// Session think-time/duration distribution (milliseconds).
    pub duration_ms: LogNormal,
    /// Typical MSS-limited data packet payload.
    pub segment_size: u32,
    /// Whether the session targets an internal server (vs external host).
    pub internal: bool,
}

/// A sampled session's concrete shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionShape {
    /// Bytes from originator to responder.
    pub request_bytes: u64,
    /// Bytes from responder to originator.
    pub response_bytes: u64,
    /// Session duration in milliseconds (>= 1).
    pub duration_ms: u64,
}

impl AppProfile {
    /// Samples one session's sizes and duration.
    pub fn sample_session<R: Rng + ?Sized>(&self, rng: &mut R) -> SessionShape {
        SessionShape {
            request_bytes: self.request_bytes.sample(rng).max(1.0) as u64,
            response_bytes: self.response_bytes.sample(rng).max(1.0) as u64,
            duration_ms: self.duration_ms.sample(rng).max(1.0) as u64,
        }
    }
}

/// Weighted mix of application profiles.
#[derive(Debug, Clone)]
pub struct ProfileCatalog {
    profiles: Vec<AppProfile>,
    mix: AliasTable,
}

impl ProfileCatalog {
    /// The default enterprise mix: mostly web, plus DNS chatter, mail, SSH
    /// and bulk transfer.
    pub fn enterprise() -> Self {
        let profiles = vec![
            AppProfile {
                name: "http",
                protocol: Protocol::Tcp,
                port: 80,
                request_bytes: LogNormal::new(5.8, 0.8), // ~330 B median
                response_bytes: LogNormal::new(8.7, 1.6), // ~6 KB median, heavy tail
                duration_ms: LogNormal::new(4.6, 1.2),   // ~100 ms median
                segment_size: 1460,
                internal: false,
            },
            AppProfile {
                name: "https",
                protocol: Protocol::Tcp,
                port: 443,
                request_bytes: LogNormal::new(6.2, 0.9),
                response_bytes: LogNormal::new(9.0, 1.7),
                duration_ms: LogNormal::new(4.8, 1.3),
                segment_size: 1460,
                internal: false,
            },
            AppProfile {
                name: "dns",
                protocol: Protocol::Udp,
                port: 53,
                request_bytes: LogNormal::new(3.9, 0.3), // ~50 B
                response_bytes: LogNormal::new(4.9, 0.5), // ~130 B
                duration_ms: LogNormal::new(2.3, 0.8),   // ~10 ms
                segment_size: 512,
                internal: true,
            },
            AppProfile {
                name: "smtp",
                protocol: Protocol::Tcp,
                port: 25,
                request_bytes: LogNormal::new(8.5, 1.4),
                response_bytes: LogNormal::new(5.0, 0.6),
                duration_ms: LogNormal::new(6.0, 1.0),
                segment_size: 1460,
                internal: true,
            },
            AppProfile {
                name: "ssh",
                protocol: Protocol::Tcp,
                port: 22,
                request_bytes: LogNormal::new(7.5, 1.5),
                response_bytes: LogNormal::new(8.0, 1.5),
                duration_ms: LogNormal::new(9.2, 1.5), // ~10 s median
                segment_size: 512,
                internal: true,
            },
            AppProfile {
                name: "ftp-data",
                protocol: Protocol::Tcp,
                port: 20,
                request_bytes: LogNormal::new(4.0, 0.5),
                response_bytes: LogNormal::new(12.0, 1.8), // ~160 KB median bulk
                duration_ms: LogNormal::new(7.5, 1.2),
                segment_size: 1460,
                internal: true,
            },
            AppProfile {
                name: "ntp",
                protocol: Protocol::Udp,
                port: 123,
                request_bytes: LogNormal::new(3.9, 0.1),
                response_bytes: LogNormal::new(3.9, 0.1),
                duration_ms: LogNormal::new(1.5, 0.5),
                segment_size: 90,
                internal: false,
            },
        ];
        // Mix: web dominates enterprise egress; DNS dominates flow *count*.
        let weights = [0.28, 0.22, 0.30, 0.05, 0.05, 0.04, 0.06];
        assert_eq!(weights.len(), profiles.len());
        let mix = AliasTable::new(&weights);
        ProfileCatalog { profiles, mix }
    }

    /// Picks a profile according to the mix weights.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> &AppProfile {
        &self.profiles[self.mix.sample(rng)]
    }

    /// All profiles.
    pub fn profiles(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Looks a profile up by name.
    pub fn by_name(&self, name: &str) -> Option<&AppProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn catalog_has_expected_apps() {
        let c = ProfileCatalog::enterprise();
        for name in ["http", "https", "dns", "smtp", "ssh", "ftp-data", "ntp"] {
            assert!(c.by_name(name).is_some(), "missing {name}");
        }
        assert!(c.by_name("gopher").is_none());
    }

    #[test]
    fn dns_is_udp_port_53() {
        let c = ProfileCatalog::enterprise();
        let dns = c.by_name("dns").expect("dns profile");
        assert_eq!(dns.protocol, Protocol::Udp);
        assert_eq!(dns.port, 53);
    }

    #[test]
    fn session_shapes_are_positive() {
        let c = ProfileCatalog::enterprise();
        let mut rng = SmallRng::seed_from_u64(7);
        for p in c.profiles() {
            for _ in 0..100 {
                let s = p.sample_session(&mut rng);
                assert!(s.request_bytes >= 1);
                assert!(s.response_bytes >= 1);
                assert!(s.duration_ms >= 1);
            }
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let c = ProfileCatalog::enterprise();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(c.pick(&mut rng).name).or_insert(0) += 1;
        }
        // DNS (0.30) should clearly beat ftp-data (0.04).
        assert!(counts["dns"] > counts["ftp-data"] * 3);
    }

    #[test]
    fn bulk_transfer_is_heavier_than_dns() {
        let c = ProfileCatalog::enterprise();
        let mut rng = SmallRng::seed_from_u64(9);
        let ftp = c.by_name("ftp-data").expect("ftp");
        let dns = c.by_name("dns").expect("dns");
        let ftp_avg: f64 =
            (0..2_000).map(|_| ftp.sample_session(&mut rng).response_bytes as f64).sum::<f64>()
                / 2_000.0;
        let dns_avg: f64 =
            (0..2_000).map(|_| dns.sample_session(&mut rng).response_bytes as f64).sum::<f64>()
                / 2_000.0;
        assert!(ftp_avg > dns_avg * 50.0, "ftp {ftp_avg} vs dns {dns_avg}");
    }
}
