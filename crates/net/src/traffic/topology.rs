//! Simulated enterprise topology: client subnets, server farm, and external
//! hosts, with Zipf host popularity so the resulting seed graph is
//! heavy-tailed like real network traces.

use csb_stats::{zipf_weights, AliasTable};
use rand::Rng;

use crate::packet::ip;

/// Topology sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Number of internal client hosts (10.1.x.y).
    pub clients: usize,
    /// Number of internal servers (10.0.0.y).
    pub servers: usize,
    /// Number of external hosts (simulated Internet, 203.x.y.z).
    pub externals: usize,
    /// Zipf exponent for server popularity (higher = more skewed).
    pub server_zipf: f64,
    /// Zipf exponent for external host popularity.
    pub external_zipf: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            clients: 200,
            servers: 20,
            externals: 400,
            server_zipf: 1.0,
            external_zipf: 1.1,
        }
    }
}

/// The host inventory plus popularity samplers.
#[derive(Debug, Clone)]
pub struct Topology {
    clients: Vec<u32>,
    servers: Vec<u32>,
    externals: Vec<u32>,
    server_table: AliasTable,
    external_table: AliasTable,
}

impl Topology {
    /// Builds the topology from the config.
    ///
    /// # Panics
    /// Panics if any host class is empty.
    pub fn new(cfg: &TopologyConfig) -> Self {
        assert!(
            cfg.clients > 0 && cfg.servers > 0 && cfg.externals > 0,
            "topology host classes must be non-empty"
        );
        let clients =
            (0..cfg.clients).map(|i| ip(10, 1, (i / 250 + 1) as u8, (i % 250 + 2) as u8)).collect();
        let servers = (0..cfg.servers).map(|i| ip(10, 0, 0, (i + 2) as u8)).collect();
        let externals = (0..cfg.externals)
            .map(|i| ip(203, (i / 62_500) as u8, (i / 250 % 250) as u8, (i % 250 + 1) as u8))
            .collect();
        let server_table = AliasTable::new(&zipf_weights(cfg.servers, cfg.server_zipf));
        let external_table = AliasTable::new(&zipf_weights(cfg.externals, cfg.external_zipf));
        Topology { clients, servers, externals, server_table, external_table }
    }

    /// All internal client addresses.
    pub fn clients(&self) -> &[u32] {
        &self.clients
    }

    /// All internal server addresses.
    pub fn servers(&self) -> &[u32] {
        &self.servers
    }

    /// All external addresses.
    pub fn externals(&self) -> &[u32] {
        &self.externals
    }

    /// Picks a client uniformly (clients initiate roughly uniformly).
    pub fn pick_client<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.clients[rng.gen_range(0..self.clients.len())]
    }

    /// Picks a server by Zipf popularity.
    pub fn pick_server<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.servers[self.server_table.sample(rng)]
    }

    /// Picks an external host by Zipf popularity.
    pub fn pick_external<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.externals[self.external_table.sample(rng)]
    }

    /// Total host count.
    pub fn host_count(&self) -> usize {
        self.clients.len() + self.servers.len() + self.externals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn hosts_are_distinct() {
        let t = Topology::new(&TopologyConfig::default());
        let mut all: Vec<u32> = t.clients().to_vec();
        all.extend_from_slice(t.servers());
        all.extend_from_slice(t.externals());
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "host addresses must be unique");
        assert_eq!(n, t.host_count());
    }

    #[test]
    fn server_popularity_is_skewed() {
        let t = Topology::new(&TopologyConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(t.pick_server(&mut rng)).or_insert(0) += 1;
        }
        let top = counts[&t.servers()[0]];
        let tail = counts.get(&t.servers()[19]).copied().unwrap_or(0);
        assert!(top > tail * 5, "rank-1 server ({top}) should dwarf rank-20 ({tail})");
    }

    #[test]
    fn small_topology_works() {
        let t = Topology::new(&TopologyConfig {
            clients: 1,
            servers: 1,
            externals: 1,
            ..TopologyConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(t.pick_client(&mut rng), t.clients()[0]);
        assert_eq!(t.pick_server(&mut rng), t.servers()[0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_class_panics() {
        let _ = Topology::new(&TopologyConfig { clients: 0, ..TopologyConfig::default() });
    }
}
