//! The benign traffic simulator: schedules application sessions over a
//! simulated capture window and expands each into a packet exchange.

use crate::flow::Protocol;
use crate::packet::{Packet, TcpFlags};
use crate::trace::Trace;
use crate::traffic::profiles::{AppProfile, ProfileCatalog, SessionShape};
use crate::traffic::topology::{Topology, TopologyConfig};
use csb_stats::rng::rng_for;
use csb_stats::Exponential;
use rand::rngs::SmallRng;
use rand::Rng;

/// Time-of-day modulation of the session arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateProfile {
    /// Constant mean rate over the whole capture.
    Constant,
    /// Sinusoidal diurnal cycle: rate varies between
    /// `mean * (1 - depth)` and `mean * (1 + depth)` over `period_secs`
    /// (business-hours traffic shape; real enterprise captures are strongly
    /// diurnal).
    Diurnal {
        /// Modulation depth in `[0, 1)`.
        depth: f64,
        /// Cycle length in seconds (86400 for a true day; shorter for
        /// laptop-scale captures).
        period_secs: f64,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct TrafficSimConfig {
    /// Topology sizing.
    pub topology: TopologyConfig,
    /// Capture duration, seconds of simulated time.
    pub duration_secs: f64,
    /// Mean benign session arrival rate (sessions/second).
    pub sessions_per_sec: f64,
    /// Fraction of sessions where an external host initiates toward an
    /// internal server (inbound traffic).
    pub inbound_fraction: f64,
    /// Arrival-rate shape over time.
    pub rate_profile: RateProfile,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for TrafficSimConfig {
    fn default() -> Self {
        TrafficSimConfig {
            topology: TopologyConfig::default(),
            duration_secs: 60.0,
            sessions_per_sec: 50.0,
            inbound_fraction: 0.2,
            rate_profile: RateProfile::Constant,
            seed: 0xC5B_5EED,
        }
    }
}

/// The benign traffic simulator.
#[derive(Debug)]
pub struct TrafficSim {
    topology: Topology,
    catalog: ProfileCatalog,
    cfg: TrafficSimConfig,
}

impl TrafficSim {
    /// Builds a simulator.
    pub fn new(cfg: TrafficSimConfig) -> Self {
        TrafficSim {
            topology: Topology::new(&cfg.topology),
            catalog: ProfileCatalog::enterprise(),
            cfg,
        }
    }

    /// The topology in use (attack injectors need it).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Instantaneous arrival rate at simulated time `t_secs`.
    fn rate_at(&self, t_secs: f64) -> f64 {
        let mean = self.cfg.sessions_per_sec.max(1e-9);
        match self.cfg.rate_profile {
            RateProfile::Constant => mean,
            RateProfile::Diurnal { depth, period_secs } => {
                let phase = std::f64::consts::TAU * t_secs / period_secs.max(1e-9);
                mean * (1.0 + depth * phase.sin()).max(1e-3)
            }
        }
    }

    /// Generates the benign trace. Non-constant rate profiles are realized
    /// by thinning a homogeneous Poisson process at the peak rate.
    pub fn generate(&self) -> Trace {
        let _span = csb_obs::span_cat("traffic.generate", "net");
        let mut trace = Trace::new();
        let mut rng = rng_for(self.cfg.seed, 0);
        let peak = match self.cfg.rate_profile {
            RateProfile::Constant => self.cfg.sessions_per_sec,
            RateProfile::Diurnal { depth, .. } => self.cfg.sessions_per_sec * (1.0 + depth),
        }
        .max(1e-9);
        let arrivals = Exponential::new(peak);
        let horizon = (self.cfg.duration_secs * 1e6) as u64;
        let mut clock = 0.0f64;
        let mut session_idx = 1u64;
        loop {
            clock += arrivals.sample(&mut rng) * 1e6;
            let start = clock as u64;
            if start >= horizon {
                break;
            }
            // Thinning: accept with probability rate(t)/peak. Constant
            // profiles skip the draw entirely (it would always accept) so
            // their packet streams are byte-identical to earlier releases.
            if self.cfg.rate_profile != RateProfile::Constant
                && rng.gen::<f64>() >= self.rate_at(clock / 1e6) / peak
            {
                continue;
            }
            let mut session_rng = rng_for(self.cfg.seed, session_idx);
            session_idx += 1;
            self.emit_session(start, &mut session_rng, &mut trace);
        }
        trace.sort();
        csb_obs::counter_add("traffic.sessions", session_idx - 1);
        csb_obs::counter_add("traffic.packets", trace.packets.len() as u64);
        csb_obs::obs_debug!(
            "traffic: {} sessions, {} packets over {:.0}s",
            session_idx - 1,
            trace.packets.len(),
            self.cfg.duration_secs
        );
        trace
    }

    /// Schedules one session: picks endpoints and an application, then emits
    /// its packets.
    fn emit_session(&self, start: u64, rng: &mut SmallRng, trace: &mut Trace) {
        let profile = self.catalog.pick(rng).clone();
        let inbound = rng.gen::<f64>() < self.cfg.inbound_fraction;
        let (client, server) = if inbound {
            (self.topology.pick_external(rng), self.topology.pick_server(rng))
        } else if profile.internal {
            (self.topology.pick_client(rng), self.topology.pick_server(rng))
        } else {
            (self.topology.pick_client(rng), self.topology.pick_external(rng))
        };
        let shape = profile.sample_session(rng);
        let sport = rng.gen_range(32768..61000);
        emit_flow_packets(&profile, client, sport, server, shape, start, rng, trace);
    }
}

/// Expands one session into packets: a TCP handshake + segmented data + FIN
/// teardown, or a UDP request/response exchange.
///
/// Exposed to the attack injectors, which reuse it for decoy benign-looking
/// flows.
#[allow(clippy::too_many_arguments)]
pub fn emit_flow_packets(
    profile: &AppProfile,
    client: u32,
    client_port: u16,
    server: u32,
    shape: SessionShape,
    start: u64,
    rng: &mut SmallRng,
    trace: &mut Trace,
) {
    let dur_micros = shape.duration_ms.max(1) * 1000;
    match profile.protocol {
        Protocol::Tcp => {
            let seg = profile.segment_size.max(1);
            let req_segs = shape.request_bytes.div_ceil(seg as u64).max(1);
            let resp_segs = shape.response_bytes.div_ceil(seg as u64).max(1);
            // Total packet count: 3 handshake + data + 2 FIN + ACKs folded in.
            let data_pkts = req_segs + resp_segs;
            let total_events = data_pkts + 5;
            let step = (dur_micros / total_events).max(1);
            let mut t = start;
            let mut push = |pkt: Packet| trace.packets.push(pkt);
            push(Packet::tcp(t, client, client_port, server, profile.port, TcpFlags::SYN, 0));
            t += step;
            push(Packet::tcp(t, server, profile.port, client, client_port, TcpFlags::SYN_ACK, 0));
            t += step;
            push(Packet::tcp(t, client, client_port, server, profile.port, TcpFlags::ACK, 0));
            let mut remaining_req = shape.request_bytes;
            for _ in 0..req_segs {
                t += step;
                let chunk = remaining_req.min(seg as u64) as u32;
                remaining_req -= chunk as u64;
                push(Packet::tcp(
                    t,
                    client,
                    client_port,
                    server,
                    profile.port,
                    TcpFlags::PSH | TcpFlags::ACK,
                    chunk,
                ));
            }
            let mut remaining_resp = shape.response_bytes;
            for _ in 0..resp_segs {
                t += step;
                let chunk = remaining_resp.min(seg as u64) as u32;
                remaining_resp -= chunk as u64;
                push(Packet::tcp(
                    t,
                    server,
                    profile.port,
                    client,
                    client_port,
                    TcpFlags::PSH | TcpFlags::ACK,
                    chunk,
                ));
            }
            t += step;
            push(Packet::tcp(
                t,
                client,
                client_port,
                server,
                profile.port,
                TcpFlags::FIN | TcpFlags::ACK,
                0,
            ));
            t += step;
            push(Packet::tcp(
                t,
                server,
                profile.port,
                client,
                client_port,
                TcpFlags::FIN | TcpFlags::ACK,
                0,
            ));
        }
        Protocol::Udp => {
            let seg = profile.segment_size.max(1);
            let req_pkts = shape.request_bytes.div_ceil(seg as u64).max(1);
            let resp_pkts = shape.response_bytes.div_ceil(seg as u64).max(1);
            let step = (dur_micros / (req_pkts + resp_pkts).max(1)).max(1);
            let mut t = start;
            let mut remaining = shape.request_bytes;
            for _ in 0..req_pkts {
                let chunk = remaining.min(seg as u64) as u32;
                remaining -= chunk as u64;
                trace.packets.push(Packet::udp(
                    t,
                    client,
                    client_port,
                    server,
                    profile.port,
                    chunk,
                ));
                t += step;
            }
            let mut remaining = shape.response_bytes;
            for _ in 0..resp_pkts {
                let chunk = remaining.min(seg as u64) as u32;
                remaining -= chunk as u64;
                trace.packets.push(Packet::udp(
                    t,
                    server,
                    profile.port,
                    client,
                    client_port,
                    chunk,
                ));
                t += step;
            }
        }
        Protocol::Icmp => {
            // Ping-style exchange.
            let pkts = shape.request_bytes.div_ceil(64).max(1);
            let step = (dur_micros / (2 * pkts).max(1)).max(1);
            let mut t = start;
            for _ in 0..pkts {
                trace.packets.push(Packet::icmp(t, client, server, 56));
                t += step;
                trace.packets.push(Packet::icmp(t, server, client, 56));
                t += step;
            }
        }
    }
    let _ = rng; // reserved for future per-packet jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::FlowAssembler;
    use crate::flow::TcpConnState;

    fn small_cfg(seed: u64) -> TrafficSimConfig {
        TrafficSimConfig {
            duration_secs: 10.0,
            sessions_per_sec: 20.0,
            seed,
            ..TrafficSimConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TrafficSim::new(small_cfg(1)).generate();
        let b = TrafficSim::new(small_cfg(1)).generate();
        assert_eq!(a.packets, b.packets);
        let c = TrafficSim::new(small_cfg(2)).generate();
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn packets_are_time_ordered() {
        let t = TrafficSim::new(small_cfg(3)).generate();
        assert!(!t.is_empty());
        assert!(t.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn sessions_become_clean_flows() {
        let t = TrafficSim::new(small_cfg(4)).generate();
        let flows = FlowAssembler::assemble(&t.packets);
        assert!(flows.len() > 50, "expected many flows, got {}", flows.len());
        // Most TCP sessions are full handshakes and teardowns: SF dominates.
        let tcp: Vec<_> = flows.iter().filter(|f| f.protocol == Protocol::Tcp).collect();
        let sf = tcp.iter().filter(|f| f.state == TcpConnState::Sf).count();
        assert!(
            sf * 10 >= tcp.len() * 9,
            "expected >=90% SF among {} TCP flows, got {}",
            tcp.len(),
            sf
        );
    }

    #[test]
    fn byte_accounting_matches_shapes() {
        // A single explicit session must conserve the requested bytes.
        let catalog = ProfileCatalog::enterprise();
        let http = catalog.by_name("http").expect("http").clone();
        let mut trace = Trace::new();
        let mut rng = rng_for(0, 0);
        let shape = SessionShape { request_bytes: 3000, response_bytes: 10_000, duration_ms: 50 };
        emit_flow_packets(&http, 1, 40000, 2, shape, 0, &mut rng, &mut trace);
        trace.sort();
        let flows = FlowAssembler::assemble(&trace.packets);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].out_bytes, 3000);
        assert_eq!(flows[0].in_bytes, 10_000);
        assert_eq!(flows[0].state, TcpConnState::Sf);
    }

    #[test]
    fn mix_contains_tcp_and_udp() {
        let t = TrafficSim::new(small_cfg(5)).generate();
        let s = t.summary();
        assert!(s.tcp > 0);
        assert!(s.udp > 0);
    }

    #[test]
    fn diurnal_profile_modulates_arrivals() {
        // One full cycle: the peak half (first half, sin > 0) must carry
        // clearly more sessions than the trough half.
        let cfg = TrafficSimConfig {
            duration_secs: 100.0,
            sessions_per_sec: 60.0,
            rate_profile: RateProfile::Diurnal { depth: 0.9, period_secs: 100.0 },
            seed: 8,
            ..TrafficSimConfig::default()
        };
        let t = TrafficSim::new(cfg).generate();
        // Count TCP SYNs as session starts.
        let starts: Vec<u64> =
            t.packets.iter().filter(|p| p.flags.is_syn_only()).map(|p| p.ts_micros).collect();
        assert!(starts.len() > 500, "need enough sessions, got {}", starts.len());
        let half = 50_000_000u64;
        let first = starts.iter().filter(|&&ts| ts < half).count();
        let second = starts.len() - first;
        assert!(first as f64 > second as f64 * 1.5, "peak half {first} vs trough half {second}");
    }

    #[test]
    fn diurnal_mean_rate_matches_constant() {
        // The sinusoid integrates to the mean: total session counts should
        // be comparable across profiles.
        let base = TrafficSimConfig {
            duration_secs: 60.0,
            sessions_per_sec: 40.0,
            seed: 9,
            ..TrafficSimConfig::default()
        };
        let constant = TrafficSim::new(base.clone()).generate();
        let diurnal = TrafficSim::new(TrafficSimConfig {
            rate_profile: RateProfile::Diurnal { depth: 0.8, period_secs: 30.0 },
            ..base
        })
        .generate();
        let ratio = diurnal.packets.len() as f64 / constant.packets.len() as f64;
        assert!((0.6..1.4).contains(&ratio), "packet ratio {ratio}");
    }
}
