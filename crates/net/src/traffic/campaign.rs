//! Multi-stage attack campaigns with per-flow ground truth.
//!
//! A [`Campaign`] is a kill chain of [`StageKind`] stages (recon → lateral
//! movement → C2 beaconing → DNS/HTTPS exfiltration) scheduled over the
//! simulated [`Topology`]. Each stage is parameterized by intensity, stealth,
//! and duration, draws from its own deterministic RNG stream
//! (`rng_for(seed, stage_index + 1)`), and targets hosts discovered by the
//! previous stage: recon's open hosts feed lateral movement, lateral
//! movement's compromised set feeds beaconing and exfiltration.
//!
//! Ground truth is exact, not windowed-heuristic: every malicious flow the
//! campaign emits is recorded as a [`StageAction`] carrying the flow's
//! oriented 5-tuple and time window, and [`label_flows`] labels an assembled
//! flow if and only if it matches an action. Two structural properties make
//! the labeling sound against benign traffic:
//!
//! 1. Campaign infrastructure (attacker + C2 hosts) lives in TEST-NET-2
//!    (`198.51.100.0/24`), disjoint from every topology host class, and
//!    lateral movement is client→client, a direction the benign simulator
//!    never generates.
//! 2. Campaign originator ports come from [`CAMPAIGN_SPORT_BASE`]`..`
//!    `+`[`CAMPAIGN_SPORT_SPAN`], disjoint from the benign simulator's
//!    ephemeral range (32768..61000).
//!
//! So no benign flow can collide with a campaign action's 5-tuple, and the
//! invariant "labeled ⇔ emitted by a stage" holds exactly.

use crate::assembler::FlowAssembler;
use crate::flow::{FlowRecord, Protocol};
use crate::packet::{ip, Packet, TcpFlags};
use crate::trace::Trace;
use crate::traffic::topology::Topology;
use csb_stats::rng::rng_for;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// First originator port campaign stages allocate from.
pub const CAMPAIGN_SPORT_BASE: u16 = 61000;
/// Size of the campaign originator-port window (ports wrap within it).
pub const CAMPAIGN_SPORT_SPAN: u16 = 4000;

/// Kill-chain stage taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StageKind {
    /// Port/host sweep of the server farm and a client sample.
    Recon,
    /// SSH-style credential attempts from a foothold toward discovered hosts.
    LateralMovement,
    /// Periodic low-volume beacons from compromised hosts to the C2 server.
    C2Beacon,
    /// Bulk DNS-tunnel and HTTPS uploads from compromised hosts.
    Exfiltration,
}

impl StageKind {
    /// All kinds, in canonical kill-chain order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Recon,
        StageKind::LateralMovement,
        StageKind::C2Beacon,
        StageKind::Exfiltration,
    ];

    /// Stable name, also accepted by [`StageKind::parse`].
    pub const fn name(self) -> &'static str {
        match self {
            StageKind::Recon => "recon",
            StageKind::LateralMovement => "lateral",
            StageKind::C2Beacon => "c2",
            StageKind::Exfiltration => "exfil",
        }
    }

    /// Parses a stage name as written in CLI stage lists.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "recon" => Some(StageKind::Recon),
            "lateral" => Some(StageKind::LateralMovement),
            "c2" => Some(StageKind::C2Beacon),
            "exfil" => Some(StageKind::Exfiltration),
            _ => None,
        }
    }

    /// The attack class flows of this stage are labeled with.
    pub const fn class(self) -> AttackClass {
        match self {
            StageKind::Recon => AttackClass::Probe,
            StageKind::LateralMovement => AttackClass::R2l,
            StageKind::C2Beacon => AttackClass::C2,
            StageKind::Exfiltration => AttackClass::Exfil,
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Attack class of a labeled flow — the NSL-KDD-style class vocabulary the
/// KDD exporter writes in its `class` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackClass {
    /// Benign traffic.
    Normal,
    /// Scanning/probing (KDD "probe").
    Probe,
    /// Remote-to-local access attempts (KDD "r2l").
    R2l,
    /// Command-and-control beaconing.
    C2,
    /// Data exfiltration.
    Exfil,
    /// Denial of service (reserved for the legacy flood injectors).
    Dos,
}

impl AttackClass {
    /// All classes, for enumeration.
    pub const ALL: [AttackClass; 6] = [
        AttackClass::Normal,
        AttackClass::Probe,
        AttackClass::R2l,
        AttackClass::C2,
        AttackClass::Exfil,
        AttackClass::Dos,
    ];

    /// Stable small integer code (the store's `CLASS` label column).
    pub const fn code(self) -> u8 {
        match self {
            AttackClass::Normal => 0,
            AttackClass::Probe => 1,
            AttackClass::R2l => 2,
            AttackClass::C2 => 3,
            AttackClass::Exfil => 4,
            AttackClass::Dos => 5,
        }
    }

    /// Inverse of [`AttackClass::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AttackClass::Normal),
            1 => Some(AttackClass::Probe),
            2 => Some(AttackClass::R2l),
            3 => Some(AttackClass::C2),
            4 => Some(AttackClass::Exfil),
            5 => Some(AttackClass::Dos),
            _ => None,
        }
    }

    /// Class name as written in KDD-style exports.
    pub const fn kdd_name(self) -> &'static str {
        match self {
            AttackClass::Normal => "normal",
            AttackClass::Probe => "probe",
            AttackClass::R2l => "r2l",
            AttackClass::C2 => "c2",
            AttackClass::Exfil => "exfil",
            AttackClass::Dos => "dos",
        }
    }
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kdd_name())
    }
}

/// Per-flow ground-truth label. Campaign id 0 is reserved for benign
/// traffic, so a v1 (unlabeled) flow store reads back as all-benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowLabel {
    /// Campaign id (0 = benign).
    pub campaign: u32,
    /// Kill-chain stage index within the campaign (0 when benign).
    pub stage: u8,
    /// Attack class.
    pub class: AttackClass,
}

impl FlowLabel {
    /// The benign label.
    pub const BENIGN: FlowLabel = FlowLabel { campaign: 0, stage: 0, class: AttackClass::Normal };

    /// True when the flow belongs to a campaign.
    pub const fn is_attack(self) -> bool {
        self.campaign != 0
    }
}

/// A flow with its ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledFlow {
    /// The assembled flow.
    pub flow: FlowRecord,
    /// Ground truth.
    pub label: FlowLabel,
}

/// Parameters of one kill-chain stage.
#[derive(Debug, Clone, Copy)]
pub struct StageParams {
    /// What the stage does.
    pub kind: StageKind,
    /// Action-count multiplier (1.0 = nominal).
    pub intensity: f64,
    /// `[0, 1]`: higher = slower, more jittered, lower-volume behavior.
    pub stealth: f64,
    /// Stage window length in simulated seconds.
    pub duration_secs: f64,
}

impl StageParams {
    /// Nominal parameters for a stage kind.
    pub fn nominal(kind: StageKind) -> Self {
        let duration_secs = match kind {
            StageKind::Recon => 30.0,
            StageKind::LateralMovement => 40.0,
            StageKind::C2Beacon => 60.0,
            StageKind::Exfiltration => 40.0,
        };
        StageParams { kind, intensity: 1.0, stealth: 0.3, duration_secs }
    }
}

/// A campaign: an id, a seed, a start time, and an ordered stage list.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign id carried in every label; must be nonzero (0 = benign).
    pub id: u32,
    /// Master seed; stage `i` draws from `rng_for(seed, i + 1)`.
    pub seed: u64,
    /// Campaign start, simulated seconds from the trace epoch.
    pub start_secs: f64,
    /// Stages, executed back to back.
    pub stages: Vec<StageParams>,
}

impl CampaignConfig {
    /// The canonical 4-stage kill chain at nominal parameters.
    pub fn kill_chain(id: u32, seed: u64, start_secs: f64) -> Self {
        CampaignConfig {
            id,
            seed,
            start_secs,
            stages: StageKind::ALL.iter().map(|&k| StageParams::nominal(k)).collect(),
        }
    }
}

/// Ground truth for one malicious flow: the exact oriented 5-tuple the
/// assembler will produce for it, plus its time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageAction {
    /// Stage index within the campaign.
    pub stage: u8,
    /// Stage kind.
    pub kind: StageKind,
    /// Originator (first sender) address.
    pub src_ip: u32,
    /// Originator port.
    pub src_port: u16,
    /// Responder address.
    pub dst_ip: u32,
    /// Responder port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// First packet timestamp, microseconds.
    pub start_micros: u64,
    /// Last packet timestamp, microseconds.
    pub end_micros: u64,
}

/// The realized campaign: its packets, ground-truth actions, and findings.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Campaign id.
    pub id: u32,
    /// Time-ordered malicious packets (labels vector left empty; campaign
    /// ground truth is `actions`).
    pub trace: Trace,
    /// One entry per malicious flow emitted.
    pub actions: Vec<StageAction>,
    /// Hosts compromised by lateral movement (drive C2 and exfiltration).
    pub compromised: Vec<u32>,
}

/// Allocates campaign originator ports: per-source sequential from the
/// campaign window so every action gets a distinct 5-tuple.
#[derive(Debug, Default)]
struct PortAlloc {
    next: HashMap<u32, u16>,
}

impl PortAlloc {
    fn alloc(&mut self, src: u32) -> u16 {
        let off = self.next.entry(src).or_insert(0);
        let port = CAMPAIGN_SPORT_BASE + *off;
        *off = (*off + 1) % CAMPAIGN_SPORT_SPAN;
        port
    }
}

/// What a stage emits: packets plus the action bookkeeping shared across
/// stages of one run.
struct StageCtx<'a> {
    stage: u8,
    kind: StageKind,
    trace: Trace,
    actions: &'a mut Vec<StageAction>,
    ports: &'a mut PortAlloc,
}

impl StageCtx<'_> {
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        src: u32,
        sport: u16,
        dst: u32,
        dport: u16,
        proto: Protocol,
        start: u64,
        end: u64,
    ) {
        self.actions.push(StageAction {
            stage: self.stage,
            kind: self.kind,
            src_ip: src,
            src_port: sport,
            dst_ip: dst,
            dst_port: dport,
            protocol: proto,
            start_micros: start,
            end_micros: end,
        });
    }

    /// SYN → SYN-ACK → attacker RST: an "open" probe (assembles as RSTO).
    fn probe_open(&mut self, t: u64, src: u32, dst: u32, dport: u16) {
        let sport = self.ports.alloc(src);
        self.trace.packets.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::SYN, 0));
        self.trace.packets.push(Packet::tcp(t + 150, dst, dport, src, sport, TcpFlags::SYN_ACK, 0));
        self.trace.packets.push(Packet::tcp(t + 300, src, sport, dst, dport, TcpFlags::RST, 0));
        self.record(src, sport, dst, dport, Protocol::Tcp, t, t + 300);
    }

    /// SYN → RST: a closed-port probe (assembles as REJ).
    fn probe_closed(&mut self, t: u64, src: u32, dst: u32, dport: u16) {
        let sport = self.ports.alloc(src);
        self.trace.packets.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::SYN, 0));
        self.trace.packets.push(Packet::tcp(
            t + 150,
            dst,
            dport,
            src,
            sport,
            TcpFlags::RST | TcpFlags::ACK,
            0,
        ));
        self.record(src, sport, dst, dport, Protocol::Tcp, t, t + 150);
    }

    /// Full TCP session: handshake, segmented data both ways, FIN teardown
    /// (assembles as SF).
    #[allow(clippy::too_many_arguments)]
    fn tcp_exchange(
        &mut self,
        t0: u64,
        src: u32,
        dst: u32,
        dport: u16,
        out_bytes: u64,
        in_bytes: u64,
        dur_micros: u64,
    ) -> u64 {
        const SEG: u64 = 1380;
        let sport = self.ports.alloc(src);
        let out_segs = out_bytes.div_ceil(SEG).max(1);
        let in_segs = in_bytes.div_ceil(SEG).max(1);
        let events = out_segs + in_segs + 5;
        let step = (dur_micros.max(1) / events).max(1);
        let mut t = t0;
        let p = &mut self.trace.packets;
        p.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::SYN, 0));
        t += step;
        p.push(Packet::tcp(t, dst, dport, src, sport, TcpFlags::SYN_ACK, 0));
        t += step;
        p.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::ACK, 0));
        let mut rem = out_bytes;
        for _ in 0..out_segs {
            t += step;
            let chunk = rem.min(SEG) as u32;
            rem -= chunk as u64;
            p.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::PSH | TcpFlags::ACK, chunk));
        }
        let mut rem = in_bytes;
        for _ in 0..in_segs {
            t += step;
            let chunk = rem.min(SEG) as u32;
            rem -= chunk as u64;
            p.push(Packet::tcp(t, dst, dport, src, sport, TcpFlags::PSH | TcpFlags::ACK, chunk));
        }
        t += step;
        p.push(Packet::tcp(t, src, sport, dst, dport, TcpFlags::FIN | TcpFlags::ACK, 0));
        t += step;
        p.push(Packet::tcp(t, dst, dport, src, sport, TcpFlags::FIN | TcpFlags::ACK, 0));
        self.record(src, sport, dst, dport, Protocol::Tcp, t0, t);
        t
    }

    /// UDP request burst with a small reply (assembles as OTH).
    #[allow(clippy::too_many_arguments)]
    fn udp_exchange(
        &mut self,
        t0: u64,
        src: u32,
        dst: u32,
        dport: u16,
        out_bytes: u64,
        in_bytes: u64,
        dur_micros: u64,
    ) -> u64 {
        const SEG: u64 = 180;
        let sport = self.ports.alloc(src);
        let out_pkts = out_bytes.div_ceil(SEG).max(1);
        let in_pkts = in_bytes.div_ceil(SEG).max(1);
        let step = (dur_micros.max(1) / (out_pkts + in_pkts)).max(1);
        let mut t = t0;
        let mut rem = out_bytes;
        for _ in 0..out_pkts {
            let chunk = rem.min(SEG) as u32;
            rem -= chunk as u64;
            self.trace.packets.push(Packet::udp(t, src, sport, dst, dport, chunk));
            t += step;
        }
        let mut rem = in_bytes;
        let mut last = t0;
        for _ in 0..in_pkts {
            let chunk = rem.min(SEG) as u32;
            rem -= chunk as u64;
            self.trace.packets.push(Packet::udp(t, dst, dport, src, sport, chunk));
            last = t;
            t += step;
        }
        self.record(src, sport, dst, dport, Protocol::Udp, t0, last);
        last
    }
}

/// The campaign engine. Deterministic given `(config, topology)`.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    ///
    /// # Panics
    /// Panics if `cfg.id == 0` (0 is the benign label) or no stages.
    pub fn new(cfg: CampaignConfig) -> Self {
        assert!(cfg.id != 0, "campaign id 0 is reserved for benign traffic");
        assert!(!cfg.stages.is_empty(), "campaign needs at least one stage");
        Campaign { cfg }
    }

    /// The attacker's external address for campaign `id` (TEST-NET-2, never
    /// a topology host).
    pub fn attacker_ip(id: u32) -> u32 {
        ip(198, 51, 100, 10 + (id % 90) as u8)
    }

    /// The C2/exfiltration server address for campaign `id`.
    pub fn c2_ip(id: u32) -> u32 {
        ip(198, 51, 100, 110 + (id % 140) as u8)
    }

    /// Runs every stage over the topology, chaining findings, and returns
    /// the time-ordered malicious trace plus exact ground truth.
    pub fn run(&self, topo: &Topology) -> CampaignRun {
        let _span = csb_obs::span_cat("campaign.run", "net");
        let cfg = &self.cfg;
        let attacker = Self::attacker_ip(cfg.id);
        let c2 = Self::c2_ip(cfg.id);
        let mut trace = Trace::new();
        let mut actions = Vec::new();
        let mut ports = PortAlloc::default();
        // Findings chain: recon fills `discovered`, lateral movement turns a
        // subset into `compromised`, which C2/exfil stages then use.
        let mut discovered: Vec<u32> = Vec::new();
        let mut compromised: Vec<u32> = Vec::new();
        let mut stage_start = (cfg.start_secs.max(0.0) * 1e6) as u64;
        for (i, stage) in cfg.stages.iter().enumerate() {
            let _stage_span = csb_obs::span_cat("campaign.stage", "net");
            let mut rng = rng_for(cfg.seed, i as u64 + 1);
            let dur = (stage.duration_secs.max(0.1) * 1e6) as u64;
            let mut ctx = StageCtx {
                stage: i as u8,
                kind: stage.kind,
                trace: Trace::new(),
                actions: &mut actions,
                ports: &mut ports,
            };
            let before = ctx.actions.len();
            match stage.kind {
                StageKind::Recon => {
                    run_recon(
                        &mut ctx,
                        stage,
                        topo,
                        attacker,
                        stage_start,
                        dur,
                        &mut rng,
                        &mut discovered,
                    );
                }
                StageKind::LateralMovement => {
                    run_lateral(
                        &mut ctx,
                        stage,
                        attacker,
                        stage_start,
                        dur,
                        &mut rng,
                        &discovered,
                        &mut compromised,
                    );
                }
                StageKind::C2Beacon => {
                    run_c2(
                        &mut ctx,
                        stage,
                        c2,
                        stage_start,
                        dur,
                        &mut rng,
                        fallback(&compromised, &discovered, attacker),
                    );
                }
                StageKind::Exfiltration => {
                    run_exfil(
                        &mut ctx,
                        stage,
                        c2,
                        stage_start,
                        dur,
                        &mut rng,
                        fallback(&compromised, &discovered, attacker),
                    );
                }
            }
            csb_obs::counter_add("campaign.actions", (ctx.actions.len() - before) as u64);
            let mut st = ctx.trace;
            st.sort();
            trace.merge_sorted(st);
            stage_start += dur;
        }
        csb_obs::counter_add("campaign.stages", cfg.stages.len() as u64);
        csb_obs::counter_add("campaign.packets", trace.packets.len() as u64);
        csb_obs::obs_debug!(
            "campaign {}: {} stages, {} actions, {} packets",
            cfg.id,
            cfg.stages.len(),
            actions.len(),
            trace.packets.len()
        );
        CampaignRun { id: cfg.id, trace, actions, compromised }
    }
}

/// C2/exfil target set: compromised hosts, else discovered hosts (a chain
/// missing the lateral stage), else the attacker itself beaconing out.
fn fallback<'a>(compromised: &'a [u32], discovered: &'a [u32], attacker: u32) -> Vec<u32> {
    if !compromised.is_empty() {
        compromised.to_vec()
    } else if !discovered.is_empty() {
        discovered.to_vec()
    } else {
        vec![attacker]
    }
}

/// Spaces `n` events over `dur`, shrunk and jittered by stealth: stealthy
/// stages use more of the window with larger per-event jitter.
fn event_time(start: u64, dur: u64, idx: u64, n: u64, stealth: f64, rng: &mut SmallRng) -> u64 {
    let usable = (dur as f64 * (0.6 + 0.4 * stealth)) as u64;
    let step = (usable / n.max(1)).max(1);
    let jitter = ((step as f64) * 0.4 * stealth * rng.gen::<f64>()) as u64;
    start + idx * step + jitter
}

#[allow(clippy::too_many_arguments)]
fn run_recon(
    ctx: &mut StageCtx<'_>,
    stage: &StageParams,
    topo: &Topology,
    attacker: u32,
    start: u64,
    dur: u64,
    rng: &mut SmallRng,
    discovered: &mut Vec<u32>,
) {
    const SERVER_PORTS: [u16; 3] = [22, 80, 443];
    // Sample fraction of clients scales with intensity, shrinks with stealth.
    let frac = (0.25 * stage.intensity * (1.0 - 0.5 * stage.stealth)).clamp(0.01, 1.0);
    let client_targets: Vec<u32> =
        topo.clients().iter().copied().filter(|_| rng.gen::<f64>() < frac).collect();
    let total = (topo.servers().len() * SERVER_PORTS.len() + client_targets.len()) as u64;
    let mut idx = 0u64;
    for &server in topo.servers() {
        let mut open = false;
        for port in SERVER_PORTS {
            let t = event_time(start, dur, idx, total, stage.stealth, rng);
            idx += 1;
            // The farm answers most well-known ports.
            if rng.gen::<f64>() < 0.9 {
                ctx.probe_open(t, attacker, server, port);
                open = true;
            } else {
                ctx.probe_closed(t, attacker, server, port);
            }
        }
        if open {
            discovered.push(server);
        }
    }
    for client in client_targets {
        let t = event_time(start, dur, idx, total, stage.stealth, rng);
        idx += 1;
        // A minority of clients run a reachable SSH service.
        if rng.gen::<f64>() < 0.35 {
            ctx.probe_open(t, attacker, client, 22);
            discovered.push(client);
        } else {
            ctx.probe_closed(t, attacker, client, 22);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lateral(
    ctx: &mut StageCtx<'_>,
    stage: &StageParams,
    attacker: u32,
    start: u64,
    dur: u64,
    rng: &mut SmallRng,
    discovered: &[u32],
    compromised: &mut Vec<u32>,
) {
    if discovered.is_empty() {
        return;
    }
    // Foothold: the attacker exploits the first discovered host directly.
    let foothold = discovered[0];
    let t = event_time(start, dur, 0, discovered.len() as u64 + 1, stage.stealth, rng);
    ctx.tcp_exchange(t, attacker, foothold, 22, 2_500, 900, 4_000_000);
    compromised.push(foothold);
    // From the foothold, spread to a deterministic intensity-scaled subset.
    let spread =
        ((discovered.len() - 1) as f64 * (0.6 * stage.intensity).min(1.0)).round() as usize;
    for (idx, &target) in (1u64..).zip(discovered.iter().skip(1).take(spread)) {
        let t = event_time(start, dur, idx, discovered.len() as u64 + 1, stage.stealth, rng);
        // A few failed credential attempts (REJ) precede each outcome.
        let tries = 1 + (rng.gen::<f64>() * 2.0 * stage.intensity) as u64;
        let mut at = t;
        for _ in 0..tries {
            ctx.probe_closed(at, foothold, target, 22);
            at += 400_000;
        }
        if rng.gen::<f64>() < 0.55 {
            ctx.tcp_exchange(at, foothold, target, 22, 1_800, 700, 3_000_000);
            compromised.push(target);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_c2(
    ctx: &mut StageCtx<'_>,
    stage: &StageParams,
    c2: u32,
    start: u64,
    dur: u64,
    rng: &mut SmallRng,
    hosts: Vec<u32>,
) {
    // Stealthy implants beacon slower; intensity speeds them up.
    let period_secs = 15.0 * (1.0 + 2.0 * stage.stealth) / stage.intensity.max(0.25);
    let beacons = ((dur as f64 / 1e6 / period_secs) as u64).max(1);
    for host in hosts {
        for k in 0..beacons {
            let t = event_time(start, dur, k, beacons, stage.stealth, rng);
            let out = 180 + (rng.gen::<f64>() * 120.0) as u64;
            let inb = 90 + (rng.gen::<f64>() * 60.0) as u64;
            ctx.tcp_exchange(t, host, c2, 443, out, inb, 600_000);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_exfil(
    ctx: &mut StageCtx<'_>,
    stage: &StageParams,
    c2: u32,
    start: u64,
    dur: u64,
    rng: &mut SmallRng,
    hosts: Vec<u32>,
) {
    let uploads = ((2.0 * stage.intensity).round() as u64).max(1);
    for host in hosts {
        for k in 0..uploads {
            let t = event_time(start, dur, k, uploads, stage.stealth, rng);
            // Stealthy exfil trickles smaller payloads over longer windows.
            let scale = 1.0 - 0.6 * stage.stealth;
            let dur_micros = (6_000_000.0 * (1.0 + 2.0 * stage.stealth)) as u64;
            if k % 2 == 0 {
                // DNS tunnel: many small queries, tiny answers.
                let out = (30_000.0 * scale * (0.5 + rng.gen::<f64>())) as u64 + 1_000;
                ctx.udp_exchange(t, host, c2, 53, out, 600, dur_micros);
            } else {
                // Bulk HTTPS upload.
                let out = (400_000.0 * scale * (0.5 + rng.gen::<f64>())) as u64 + 10_000;
                ctx.tcp_exchange(t, host, c2, 443, out, 2_000, dur_micros);
            }
        }
    }
}

/// Labels assembled flows against campaign ground truth: a flow is labeled
/// iff its oriented 5-tuple matches a [`StageAction`] and its first packet
/// falls inside the action's window; everything else is benign.
pub fn label_flows(flows: &[FlowRecord], runs: &[CampaignRun]) -> Vec<LabeledFlow> {
    let _span = csb_obs::span_cat("campaign.label", "net");
    type Key = (u32, u16, u32, u16, u8);
    let mut index: HashMap<Key, Vec<(u64, u64, FlowLabel)>> = HashMap::new();
    for run in runs {
        for a in &run.actions {
            let label = FlowLabel { campaign: run.id, stage: a.stage, class: a.kind.class() };
            index
                .entry((a.src_ip, a.src_port, a.dst_ip, a.dst_port, a.protocol.number()))
                .or_default()
                .push((a.start_micros, a.end_micros, label));
        }
    }
    let mut labeled = 0u64;
    let out = flows
        .iter()
        .map(|f| {
            let key = (f.src_ip, f.src_port, f.dst_ip, f.dst_port, f.protocol.number());
            let label = index
                .get(&key)
                .and_then(|windows| {
                    windows
                        .iter()
                        .find(|(s, e, _)| (*s..=*e).contains(&f.first_ts_micros))
                        .map(|&(_, _, l)| l)
                })
                .unwrap_or(FlowLabel::BENIGN);
            if label.is_attack() {
                labeled += 1;
            }
            LabeledFlow { flow: *f, label }
        })
        .collect();
    csb_obs::counter_add("campaign.labeled_flows", labeled);
    out
}

/// Assembles a combined benign+campaign trace into labeled flows with
/// `workers` parallel assembler partitions. The output is byte-identical for
/// every worker count (see [`FlowAssembler::assemble_partitioned`]).
pub fn assemble_labeled(trace: &Trace, runs: &[CampaignRun], workers: usize) -> Vec<LabeledFlow> {
    let flows = FlowAssembler::assemble_partitioned(&trace.packets, workers);
    label_flows(&flows, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::new(&TopologyConfig {
            clients: 40,
            servers: 5,
            externals: 30,
            ..TopologyConfig::default()
        })
    }

    #[test]
    fn kill_chain_runs_all_four_stages() {
        let run = Campaign::new(CampaignConfig::kill_chain(1, 42, 0.0)).run(&topo());
        assert!(!run.trace.is_empty());
        assert!(!run.compromised.is_empty(), "lateral movement must compromise hosts");
        for (i, kind) in StageKind::ALL.iter().enumerate() {
            assert!(
                run.actions.iter().any(|a| a.stage == i as u8 && a.kind == *kind),
                "stage {kind} emitted no actions"
            );
        }
        assert!(run.trace.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = CampaignConfig::kill_chain(3, 7, 5.0);
        let a = Campaign::new(cfg.clone()).run(&topo());
        let b = Campaign::new(cfg).run(&topo());
        assert_eq!(a.trace.packets, b.trace.packets);
        assert_eq!(a.actions, b.actions);
        let c = Campaign::new(CampaignConfig::kill_chain(3, 8, 5.0)).run(&topo());
        assert_ne!(a.trace.packets, c.trace.packets);
    }

    #[test]
    fn every_action_assembles_to_one_labeled_flow() {
        let run = Campaign::new(CampaignConfig::kill_chain(2, 99, 0.0)).run(&topo());
        let n_actions = run.actions.len();
        let flows = FlowAssembler::assemble(&run.trace.packets);
        let labeled = label_flows(&flows, &[run]);
        let attack = labeled.iter().filter(|l| l.label.is_attack()).count();
        assert_eq!(attack, labeled.len(), "a pure campaign trace has no benign flows");
        assert_eq!(attack, n_actions, "actions and labeled flows must be 1:1");
    }

    #[test]
    fn stage_targets_derive_from_findings() {
        let run = Campaign::new(CampaignConfig::kill_chain(4, 1234, 0.0)).run(&topo());
        // Every C2/exfil originator must be a compromised host.
        for a in &run.actions {
            if matches!(a.kind, StageKind::C2Beacon | StageKind::Exfiltration) {
                assert!(run.compromised.contains(&a.src_ip));
            }
        }
        // Every lateral target beyond the foothold was discovered by recon.
        let probed: Vec<u32> =
            run.actions.iter().filter(|a| a.kind == StageKind::Recon).map(|a| a.dst_ip).collect();
        for a in &run.actions {
            if a.kind == StageKind::LateralMovement && run.compromised.first() == Some(&a.src_ip) {
                assert!(probed.contains(&a.dst_ip), "lateral target was never probed");
            }
        }
    }

    #[test]
    fn intensity_scales_action_count() {
        let mut lo = CampaignConfig::kill_chain(5, 11, 0.0);
        let mut hi = lo.clone();
        for s in &mut lo.stages {
            s.intensity = 0.4;
        }
        for s in &mut hi.stages {
            s.intensity = 2.0;
        }
        let t = topo();
        let a = Campaign::new(lo).run(&t).actions.len();
        let b = Campaign::new(hi).run(&t).actions.len();
        assert!(b > a, "intensity 2.0 ({b}) must emit more actions than 0.4 ({a})");
    }

    #[test]
    fn class_and_stage_codes_round_trip() {
        for c in AttackClass::ALL {
            assert_eq!(AttackClass::from_code(c.code()), Some(c));
        }
        assert_eq!(AttackClass::from_code(6), None);
        for k in StageKind::ALL {
            assert_eq!(StageKind::parse(k.name()), Some(k));
            assert!(k.class().code() != 0);
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn campaign_id_zero_panics() {
        let _ = Campaign::new(CampaignConfig::kill_chain(0, 1, 0.0));
    }
}
