//! The flow assembler: the Bro-IDS-equivalent stage of the paper's seed
//! pipeline (Fig. 1, "PCAP -> Netflow").
//!
//! Packets are grouped into flows keyed by the 5-tuple; the first packet of a
//! key determines the originator. TCP flows close on handshake-teardown or
//! RST (after an idle timeout flushes stragglers); UDP/ICMP streams close on
//! idle timeout. `finish()` flushes everything still open.

use crate::flow::{FlowRecord, Protocol, TcpConnState};
use crate::packet::{Packet, TcpFlags};
use crate::tcp::{Direction, TcpTracker};
use std::collections::HashMap;

/// Canonical bidirectional 5-tuple key. The originator's orientation is
/// stored in the builder; the key itself is direction-agnostic so replies
/// find the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowKey {
    lo_ip: u32,
    hi_ip: u32,
    lo_port: u16,
    hi_port: u16,
    protocol: Protocol,
}

impl FlowKey {
    fn of(p: &Packet) -> Self {
        // Order endpoints so both directions map to the same key.
        if (p.src_ip, p.src_port) <= (p.dst_ip, p.dst_port) {
            FlowKey {
                lo_ip: p.src_ip,
                hi_ip: p.dst_ip,
                lo_port: p.src_port,
                hi_port: p.dst_port,
                protocol: p.protocol,
            }
        } else {
            FlowKey {
                lo_ip: p.dst_ip,
                hi_ip: p.src_ip,
                lo_port: p.dst_port,
                hi_port: p.src_port,
                protocol: p.protocol,
            }
        }
    }

    /// Stable partition index for parallel assembly: FNV-1a over the
    /// canonical tuple, independent of `HashMap`'s per-process hasher.
    fn partition(&self, workers: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.lo_ip.to_le_bytes() {
            mix(b);
        }
        for b in self.hi_ip.to_le_bytes() {
            mix(b);
        }
        for b in self.lo_port.to_le_bytes() {
            mix(b);
        }
        for b in self.hi_port.to_le_bytes() {
            mix(b);
        }
        mix(self.protocol.number());
        (h % workers.max(1) as u64) as usize
    }
}

/// The deterministic total order of assembled flow streams: no two distinct
/// flows can share all six fields (same key at the same instant would be one
/// builder), so sequential and partitioned assembly sort identically.
fn flow_sort_key(f: &FlowRecord) -> (u64, u32, u32, u16, u16, u8) {
    (f.first_ts_micros, f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.protocol.number())
}

#[derive(Debug)]
struct FlowBuilder {
    orig_ip: u32,
    orig_port: u16,
    resp_ip: u32,
    resp_port: u16,
    protocol: Protocol,
    first_ts: u64,
    last_ts: u64,
    out_bytes: u64,
    in_bytes: u64,
    out_pkts: u64,
    in_pkts: u64,
    syn_count: u32,
    ack_count: u32,
    tcp: TcpTracker,
}

impl FlowBuilder {
    fn start(p: &Packet) -> Self {
        FlowBuilder {
            orig_ip: p.src_ip,
            orig_port: p.src_port,
            resp_ip: p.dst_ip,
            resp_port: p.dst_port,
            protocol: p.protocol,
            first_ts: p.ts_micros,
            last_ts: p.ts_micros,
            out_bytes: 0,
            in_bytes: 0,
            out_pkts: 0,
            in_pkts: 0,
            syn_count: 0,
            ack_count: 0,
            tcp: TcpTracker::new(),
        }
    }

    fn add(&mut self, p: &Packet) {
        let dir = if p.src_ip == self.orig_ip && p.src_port == self.orig_port {
            Direction::Out
        } else {
            Direction::In
        };
        self.last_ts = self.last_ts.max(p.ts_micros);
        match dir {
            Direction::Out => {
                self.out_bytes += p.payload_len as u64;
                self.out_pkts += 1;
            }
            Direction::In => {
                self.in_bytes += p.payload_len as u64;
                self.in_pkts += 1;
            }
        }
        if self.protocol == Protocol::Tcp {
            if p.flags.contains(TcpFlags::SYN) {
                self.syn_count += 1;
            }
            if p.flags.contains(TcpFlags::ACK) {
                self.ack_count += 1;
            }
            self.tcp.observe(dir, p.flags);
        }
    }

    fn is_tcp_closed(&self) -> bool {
        matches!(
            self.tcp.state(),
            TcpConnState::Sf | TcpConnState::Rej | TcpConnState::Rsto | TcpConnState::Rstr
        )
    }

    fn build(&self) -> FlowRecord {
        let state =
            if self.protocol == Protocol::Tcp { self.tcp.state() } else { TcpConnState::Oth };
        FlowRecord {
            src_ip: self.orig_ip,
            dst_ip: self.resp_ip,
            protocol: self.protocol,
            src_port: self.orig_port,
            dst_port: self.resp_port,
            duration_ms: (self.last_ts - self.first_ts) / 1000,
            out_bytes: self.out_bytes,
            in_bytes: self.in_bytes,
            out_pkts: self.out_pkts,
            in_pkts: self.in_pkts,
            state,
            syn_count: self.syn_count,
            ack_count: self.ack_count,
            first_ts_micros: self.first_ts,
        }
    }
}

/// Streaming flow assembler.
///
/// Feed packets in (roughly) timestamp order with [`FlowAssembler::push`];
/// completed flows become available via [`FlowAssembler::drain_completed`];
/// call [`FlowAssembler::finish`] at end of trace.
#[derive(Debug)]
pub struct FlowAssembler {
    active: HashMap<FlowKey, FlowBuilder>,
    completed: Vec<FlowRecord>,
    /// Idle timeout (microseconds) after which a stream is considered over.
    idle_timeout_micros: u64,
    /// Time of the most recent packet, for timeout sweeps.
    now: u64,
    /// Packets since the last timeout sweep.
    since_sweep: usize,
}

impl FlowAssembler {
    /// Default idle timeout: 60 s, a common NetFlow inactive-timeout value.
    pub const DEFAULT_IDLE_TIMEOUT_MICROS: u64 = 60_000_000;

    /// Creates an assembler with the default idle timeout.
    pub fn new() -> Self {
        Self::with_idle_timeout(Self::DEFAULT_IDLE_TIMEOUT_MICROS)
    }

    /// Creates an assembler with a custom idle timeout in microseconds.
    pub fn with_idle_timeout(idle_timeout_micros: u64) -> Self {
        FlowAssembler {
            active: HashMap::new(),
            completed: Vec::new(),
            idle_timeout_micros,
            now: 0,
            since_sweep: 0,
        }
    }

    /// Observes one packet.
    pub fn push(&mut self, p: &Packet) {
        self.now = self.now.max(p.ts_micros);
        let key = FlowKey::of(p);
        // A packet landing on an idle-expired stream starts a new flow.
        if let Some(existing) = self.active.get(&key) {
            if p.ts_micros.saturating_sub(existing.last_ts) > self.idle_timeout_micros {
                let done = self.active.remove(&key).expect("entry exists");
                self.completed.push(done.build());
            }
        }
        let entry = self.active.entry(key).or_insert_with(|| FlowBuilder::start(p));
        entry.add(p);
        if p.protocol == Protocol::Tcp && entry.is_tcp_closed() {
            let done = self.active.remove(&key).expect("entry exists");
            self.completed.push(done.build());
        }
        // Amortized timeout sweep so long traces do not accumulate unbounded
        // idle UDP streams.
        self.since_sweep += 1;
        if self.since_sweep >= 4096 {
            self.sweep_idle();
            self.since_sweep = 0;
        }
    }

    /// Processes a whole packet slice and finishes, returning all flows.
    pub fn assemble(packets: &[Packet]) -> Vec<FlowRecord> {
        let _span = csb_obs::span_cat("assembler.assemble", "net");
        let mut a = FlowAssembler::new();
        for p in packets {
            a.push(p);
        }
        a.finish()
    }

    /// Parallel assembly over `workers` threads, byte-identical to
    /// [`FlowAssembler::assemble`] for every worker count.
    ///
    /// Flow construction is per-key independent (timeout splits compare a
    /// packet's timestamp against the *same key's* last packet, never
    /// another flow's), so packets are partitioned by a stable hash of the
    /// canonical 5-tuple, each partition is assembled independently, and the
    /// concatenation is re-sorted with the same total order `finish()` uses.
    pub fn assemble_partitioned(packets: &[Packet], workers: usize) -> Vec<FlowRecord> {
        if workers <= 1 {
            return Self::assemble(packets);
        }
        let _span = csb_obs::span_cat("assembler.assemble_partitioned", "net");
        let mut buckets: Vec<Vec<Packet>> = vec![Vec::new(); workers];
        for p in packets {
            buckets[FlowKey::of(p).partition(workers)].push(*p);
        }
        // Spawned threads do not inherit the caller's recorder scope.
        let recorder = csb_obs::recorder::current();
        let mut out: Vec<FlowRecord> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|b| {
                    let recorder = recorder.clone();
                    s.spawn(move || {
                        let _obs_scope = recorder.install();
                        Self::assemble(&b)
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("assembler worker panicked")).collect()
        });
        out.sort_unstable_by_key(flow_sort_key);
        out
    }

    /// Advances the assembler's clock to `ts_micros` (e.g. a window
    /// boundary) and expires idle streams — the "inactive timeout" export a
    /// real NetFlow exporter performs even when no further packets arrive
    /// on a flow. Time never moves backwards.
    pub fn advance_time(&mut self, ts_micros: u64) {
        self.now = self.now.max(ts_micros);
        self.sweep_idle();
    }

    /// Closes every active stream idle for longer than the timeout.
    fn sweep_idle(&mut self) {
        let cutoff = self.now.saturating_sub(self.idle_timeout_micros);
        let expired: Vec<FlowKey> =
            self.active.iter().filter(|(_, b)| b.last_ts < cutoff).map(|(&k, _)| k).collect();
        for k in expired {
            let b = self.active.remove(&k).expect("key collected above");
            self.completed.push(b.build());
        }
    }

    /// Takes the flows completed so far.
    pub fn drain_completed(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Number of currently open streams.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Flushes all open streams and returns every completed flow.
    pub fn finish(mut self) -> Vec<FlowRecord> {
        let _span = csb_obs::span_cat("assembler.finish", "net");
        let mut out = std::mem::take(&mut self.completed);
        let mut rest: Vec<FlowRecord> = self.active.values().map(|b| b.build()).collect();
        out.append(&mut rest);
        // Deterministic order regardless of hash iteration.
        out.sort_unstable_by_key(flow_sort_key);
        csb_obs::counter_add("assembler.flows", out.len() as u64);
        csb_obs::obs_debug!("assembler: {} flows finished", out.len());
        out
    }
}

impl Default for FlowAssembler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ip;

    const A: u32 = ip(10, 0, 0, 1);
    const B: u32 = ip(10, 0, 0, 2);

    fn tcp_session(t0: u64, src: u32, sport: u16, dst: u32, dport: u16) -> Vec<Packet> {
        vec![
            Packet::tcp(t0, src, sport, dst, dport, TcpFlags::SYN, 0),
            Packet::tcp(t0 + 100, dst, dport, src, sport, TcpFlags::SYN_ACK, 0),
            Packet::tcp(t0 + 200, src, sport, dst, dport, TcpFlags::ACK, 0),
            Packet::tcp(t0 + 300, src, sport, dst, dport, TcpFlags::PSH | TcpFlags::ACK, 120),
            Packet::tcp(t0 + 400, dst, dport, src, sport, TcpFlags::PSH | TcpFlags::ACK, 900),
            Packet::tcp(t0 + 500, src, sport, dst, dport, TcpFlags::FIN | TcpFlags::ACK, 0),
            Packet::tcp(t0 + 600, dst, dport, src, sport, TcpFlags::FIN | TcpFlags::ACK, 0),
        ]
    }

    #[test]
    fn full_tcp_session_assembles_one_sf_flow() {
        let flows = FlowAssembler::assemble(&tcp_session(1_000, A, 40000, B, 80));
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.src_ip, A);
        assert_eq!(f.dst_ip, B);
        assert_eq!(f.src_port, 40000);
        assert_eq!(f.dst_port, 80);
        assert_eq!(f.state, TcpConnState::Sf);
        assert_eq!(f.out_bytes, 120);
        assert_eq!(f.in_bytes, 900);
        assert_eq!(f.out_pkts, 4);
        assert_eq!(f.in_pkts, 3);
        assert_eq!(f.syn_count, 2); // SYN + SYN-ACK both carry SYN.
        assert_eq!(f.duration_ms, 0); // 600 us rounds down.
        assert_eq!(f.first_ts_micros, 1_000);
    }

    #[test]
    fn originator_is_first_sender() {
        // B initiates toward A: flow must be oriented B -> A even though
        // A < B in key order.
        let flows = FlowAssembler::assemble(&tcp_session(0, B, 51000, A, 22));
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].src_ip, B);
        assert_eq!(flows[0].dst_ip, A);
    }

    #[test]
    fn unanswered_syn_is_s0_after_finish() {
        let pkts = vec![Packet::tcp(0, A, 1234, B, 80, TcpFlags::SYN, 0)];
        let flows = FlowAssembler::assemble(&pkts);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].state, TcpConnState::S0);
    }

    #[test]
    fn rejected_connection_is_rej() {
        let pkts = vec![
            Packet::tcp(0, A, 1234, B, 23, TcpFlags::SYN, 0),
            Packet::tcp(50, B, 23, A, 1234, TcpFlags::RST | TcpFlags::ACK, 0),
        ];
        let flows = FlowAssembler::assemble(&pkts);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].state, TcpConnState::Rej);
    }

    #[test]
    fn udp_streams_aggregate_until_timeout() {
        let mut pkts = vec![
            Packet::udp(0, A, 5353, B, 53, 60),
            Packet::udp(1_000, B, 53, A, 5353, 300),
            Packet::udp(2_000, A, 5353, B, 53, 60),
        ];
        // A second stream well past the idle timeout on the same 5-tuple.
        pkts.push(Packet::udp(120_000_000, A, 5353, B, 53, 60));
        let mut asm = FlowAssembler::new();
        for p in &pkts {
            asm.push(p);
        }
        // Force the sweep (normally amortized) then finish.
        asm.sweep_idle();
        let flows = asm.finish();
        assert_eq!(flows.len(), 2, "timeout must split the two bursts");
        assert_eq!(flows[0].out_pkts, 2);
        assert_eq!(flows[0].in_pkts, 1);
        assert_eq!(flows[0].in_bytes, 300);
        assert_eq!(flows[0].state, TcpConnState::Oth);
    }

    #[test]
    fn two_sessions_same_endpoints_different_ports_are_distinct() {
        let mut pkts = tcp_session(0, A, 40000, B, 80);
        pkts.extend(tcp_session(10, A, 40001, B, 80));
        let flows = FlowAssembler::assemble(&pkts);
        assert_eq!(flows.len(), 2);
    }

    #[test]
    fn packet_conservation() {
        // Total packets across flows == packets fed in.
        let mut pkts = tcp_session(0, A, 40000, B, 80);
        pkts.extend(tcp_session(5_000, B, 52000, A, 443));
        pkts.push(Packet::udp(7_000, A, 9999, B, 53, 10));
        pkts.push(Packet::icmp(8_000, B, A, 56));
        let n = pkts.len() as u64;
        let flows = FlowAssembler::assemble(&pkts);
        let total: u64 = flows.iter().map(|f| f.total_pkts()).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn partitioned_assembly_matches_sequential_for_any_worker_count() {
        // A busy little trace with splits (idle timeout) and mixed protocols.
        let mut pkts = Vec::new();
        for i in 0..40u16 {
            pkts.extend(tcp_session(i as u64 * 1_000, A, 40_000 + i, B, 80));
            pkts.push(Packet::udp(i as u64 * 1_500, B, 53, A, 9_000 + i, 60));
        }
        pkts.push(Packet::udp(200_000_000, A, 9_000, B, 53, 60));
        pkts.sort_by_key(|p| p.ts_micros);
        let sequential = FlowAssembler::assemble(&pkts);
        for workers in [1usize, 2, 3, 7, 16] {
            let par = FlowAssembler::assemble_partitioned(&pkts, workers);
            assert_eq!(par, sequential, "workers={workers} diverged");
        }
    }

    #[test]
    fn deterministic_output_order() {
        let mut pkts = tcp_session(100, A, 40000, B, 80);
        pkts.extend(tcp_session(0, B, 52000, A, 443));
        let flows = FlowAssembler::assemble(&pkts);
        assert!(flows.windows(2).all(|w| w[0].first_ts_micros <= w[1].first_ts_micros));
    }
}
