//! Classic libpcap capture-file format, reader and writer.
//!
//! The paper's pipeline consumes traces "in the PCAP format"; this module
//! implements the classic (non-ng) format: a 24-byte global header followed
//! by 16-byte per-record headers and raw link-layer frames. Frames are
//! Ethernet II + IPv4 + TCP/UDP/ICMP, which is what every public IDS dataset
//! ships. Only the header fields the flow pipeline needs are materialized;
//! payload bytes are zero-filled on write and skipped on read (snap length).

use crate::flow::Protocol;
use crate::packet::{Packet, TcpFlags};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

/// PCAP magic for microsecond timestamps, little-endian writer convention.
const MAGIC_LE: u32 = 0xA1B2_C3D4;
/// Same magic byte-swapped: a big-endian capture.
const MAGIC_BE: u32 = 0xD4C3_B2A1;
/// Link type LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;
/// Ethernet header length.
const ETH_LEN: usize = 14;
/// Bytes of each frame actually stored (headers only; payload elided).
const SNAPLEN: u32 = 64;

/// Errors from PCAP parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a classic-pcap stream, or unsupported link type.
    BadFormat(String),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadFormat(m) => write!(f, "bad pcap: {m}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Writes a whole trace to a classic-pcap byte stream.
pub fn write_pcap<W: Write>(mut w: W, packets: &[Packet]) -> Result<(), PcapError> {
    let mut buf = Vec::with_capacity(24 + packets.len() * (16 + SNAPLEN as usize));
    // Global header.
    buf.put_u32_le(MAGIC_LE);
    buf.put_u16_le(2); // version major
    buf.put_u16_le(4); // version minor
    buf.put_i32_le(0); // thiszone
    buf.put_u32_le(0); // sigfigs
    buf.put_u32_le(SNAPLEN);
    buf.put_u32_le(LINKTYPE_ETHERNET);

    for p in packets {
        let frame = encode_frame(p);
        let orig_len = ETH_LEN as u32 + p.wire_len();
        let incl_len = frame.len() as u32;
        buf.put_u32_le((p.ts_micros / 1_000_000) as u32);
        buf.put_u32_le((p.ts_micros % 1_000_000) as u32);
        buf.put_u32_le(incl_len);
        buf.put_u32_le(orig_len);
        buf.extend_from_slice(&frame);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Encodes the Ethernet+IPv4+transport headers of one packet, truncated to
/// the snap length.
fn encode_frame(p: &Packet) -> Vec<u8> {
    let mut f = Vec::with_capacity(SNAPLEN as usize);
    // Ethernet II: zero MACs, EtherType IPv4.
    f.extend_from_slice(&[0u8; 12]);
    f.put_u16(0x0800);
    // IPv4 header (20 bytes, no options).
    f.put_u8(0x45); // version 4, IHL 5
    f.put_u8(0); // DSCP/ECN
    f.put_u16(p.wire_len() as u16); // total length (clamped to u16 naturally)
    f.put_u16(0); // identification
    f.put_u16(0x4000); // don't fragment
    f.put_u8(64); // TTL
    f.put_u8(p.protocol.number());
    f.put_u16(0); // checksum (not computed; readers we target don't verify)
    f.put_u32(p.src_ip);
    f.put_u32(p.dst_ip);
    match p.protocol {
        Protocol::Tcp => {
            f.put_u16(p.src_port);
            f.put_u16(p.dst_port);
            f.put_u32(0); // seq
            f.put_u32(0); // ack
            f.put_u8(0x50); // data offset 5
            f.put_u8(p.flags.0);
            f.put_u16(0xFFFF); // window
            f.put_u16(0); // checksum
            f.put_u16(0); // urgent
        }
        Protocol::Udp => {
            f.put_u16(p.src_port);
            f.put_u16(p.dst_port);
            f.put_u16(8 + p.payload_len as u16);
            f.put_u16(0); // checksum
        }
        Protocol::Icmp => {
            f.put_u8(8); // echo request
            f.put_u8(0); // code
            f.put_u16(0); // checksum
            f.put_u32(0); // identifier/sequence
        }
    }
    f.truncate(SNAPLEN as usize);
    f
}

/// Reads a whole classic-pcap byte stream back into packets.
///
/// Non-IPv4 frames and IPv4 protocols other than TCP/UDP/ICMP are skipped.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<Packet>, PcapError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    let mut buf = &data[..];
    if buf.remaining() < 24 {
        return Err(PcapError::BadFormat("truncated global header".into()));
    }
    let magic = buf.get_u32_le();
    let swapped = match magic {
        MAGIC_LE => false,
        MAGIC_BE => true,
        m => return Err(PcapError::BadFormat(format!("unknown magic {m:#x}"))),
    };
    let read_u32 = |b: &mut &[u8]| if swapped { b.get_u32() } else { b.get_u32_le() };
    let read_u16 = |b: &mut &[u8]| if swapped { b.get_u16() } else { b.get_u16_le() };

    let _vmaj = read_u16(&mut buf);
    let _vmin = read_u16(&mut buf);
    buf.advance(8); // thiszone + sigfigs
    let _snaplen = read_u32(&mut buf);
    let linktype = read_u32(&mut buf);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadFormat(format!("unsupported link type {linktype}")));
    }

    let mut packets = Vec::new();
    while buf.remaining() >= 16 {
        let ts_sec = read_u32(&mut buf) as u64;
        let ts_usec = read_u32(&mut buf) as u64;
        let incl_len = read_u32(&mut buf) as usize;
        let orig_len = read_u32(&mut buf) as usize;
        if buf.remaining() < incl_len {
            return Err(PcapError::BadFormat("truncated record".into()));
        }
        let frame = &buf[..incl_len];
        buf.advance(incl_len);
        if let Some(p) = decode_frame(frame, ts_sec * 1_000_000 + ts_usec, orig_len) {
            packets.push(p);
        }
    }
    Ok(packets)
}

/// Decodes one Ethernet frame; `None` for frames we don't model.
fn decode_frame(frame: &[u8], ts_micros: u64, orig_len: usize) -> Option<Packet> {
    if frame.len() < ETH_LEN + 20 {
        return None;
    }
    let mut b = &frame[12..];
    let ethertype = b.get_u16();
    if ethertype != 0x0800 {
        return None;
    }
    let vihl = b.get_u8();
    if vihl >> 4 != 4 {
        return None;
    }
    let ihl = ((vihl & 0x0F) as usize) * 4;
    b.advance(1); // DSCP
    let _total_len = b.get_u16();
    b.advance(5); // id, frag, ttl
    let proto_num = b.get_u8();
    b.advance(2); // checksum
    let src_ip = b.get_u32();
    let dst_ip = b.get_u32();
    if ihl > 20 {
        let extra = ihl - 20;
        if b.remaining() < extra {
            return None;
        }
        b.advance(extra);
    }
    let protocol = Protocol::from_number(proto_num)?;
    let (src_port, dst_port, flags, header_len) = match protocol {
        Protocol::Tcp => {
            if b.remaining() < 14 {
                return None;
            }
            let sp = b.get_u16();
            let dp = b.get_u16();
            b.advance(8);
            b.advance(1); // data offset
            let fl = TcpFlags(b.get_u8());
            (sp, dp, fl, 20usize)
        }
        Protocol::Udp => {
            if b.remaining() < 4 {
                return None;
            }
            let sp = b.get_u16();
            let dp = b.get_u16();
            (sp, dp, TcpFlags::empty(), 8usize)
        }
        Protocol::Icmp => (0, 0, TcpFlags::empty(), 8usize),
    };
    // Payload length from the *original* length, since the stored frame is
    // snapped.
    let payload_len = orig_len.saturating_sub(ETH_LEN + ihl + header_len) as u32;
    Some(Packet { ts_micros, src_ip, dst_ip, src_port, dst_port, protocol, flags, payload_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ip;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::tcp(1_234_567, ip(10, 1, 1, 1), 40000, ip(10, 1, 1, 2), 80, TcpFlags::SYN, 0),
            Packet::tcp(
                2_000_001,
                ip(10, 1, 1, 2),
                80,
                ip(10, 1, 1, 1),
                40000,
                TcpFlags::SYN_ACK,
                0,
            ),
            Packet::tcp(
                3_500_000,
                ip(10, 1, 1, 1),
                40000,
                ip(10, 1, 1, 2),
                80,
                TcpFlags::PSH | TcpFlags::ACK,
                1460,
            ),
            Packet::udp(4_000_000, ip(192, 168, 0, 9), 5353, ip(8, 8, 8, 8), 53, 64),
            Packet::icmp(5_000_000, ip(192, 168, 0, 9), ip(8, 8, 4, 4), 56),
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let original = sample_packets();
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &original).expect("write");
        let parsed = read_pcap(&bytes[..]).expect("read");
        assert_eq!(parsed, original);
    }

    #[test]
    fn global_header_is_well_formed() {
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &[]).expect("write");
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(&bytes[4..6], &2u16.to_le_bytes());
        assert_eq!(&bytes[6..8], &4u16.to_le_bytes());
        assert_eq!(&bytes[20..24], &1u32.to_le_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pcap(&b"not a pcap file at all....."[..]).is_err());
        assert!(read_pcap(&[][..]).is_err());
    }

    #[test]
    fn rejects_truncated_record() {
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &sample_packets()).expect("write");
        bytes.truncate(bytes.len() - 3);
        assert!(read_pcap(&bytes[..]).is_err());
    }

    #[test]
    fn large_payload_survives_snaplen() {
        let p =
            vec![Packet::tcp(0, ip(1, 1, 1, 1), 1, ip(2, 2, 2, 2), 2, TcpFlags::ACK, 1_000_000)];
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &p).expect("write");
        let parsed = read_pcap(&bytes[..]).expect("read");
        assert_eq!(parsed[0].payload_len, 1_000_000);
    }

    #[test]
    fn timestamps_preserved_to_microsecond() {
        let p = vec![Packet::icmp(987_654_321, ip(1, 1, 1, 1), ip(2, 2, 2, 2), 8)];
        let mut bytes = Vec::new();
        write_pcap(&mut bytes, &p).expect("write");
        let parsed = read_pcap(&bytes[..]).expect("read");
        assert_eq!(parsed[0].ts_micros, 987_654_321);
    }
}
