//! NSL-KDD-style labeled feature-row export.
//!
//! Classic IDS benchmarks (KDD'99 and its NSL-KDD revision) describe each
//! connection as a feature vector plus an attack-class label. This module
//! derives an analogous, fully deterministic row set from labeled flows so a
//! generated campaign trace can feed tabular NIDS baselines alongside the
//! graph pipeline.
//!
//! Determinism contract: rows depend only on the flow records and labels —
//! all derived features use integer arithmetic plus IEEE-754 division of
//! small integers, and formatting is fixed-width (`{:.2}`), so a fixed-seed
//! campaign exports byte-identical rows on every platform. The golden test
//! in `crates/core/tests` pins this.

use crate::flow::{Protocol, TcpConnState};
use crate::traffic::campaign::LabeledFlow;
use std::collections::{HashMap, VecDeque};

/// Trailing time window for the `count`/`srv_count` traffic features,
/// mirroring KDD's two-second window.
pub const WINDOW_MICROS: u64 = 2_000_000;

/// Host-window depth for the `dst_host_*` features (KDD uses the last 100
/// connections).
pub const HOST_WINDOW: usize = 100;

/// Column names of an exported row, in order.
pub const KDD_COLUMNS: [&str; 17] = [
    "duration",
    "protocol_type",
    "service",
    "flag",
    "src_bytes",
    "dst_bytes",
    "land",
    "count",
    "srv_count",
    "serror_rate",
    "srv_serror_rate",
    "same_srv_rate",
    "dst_host_count",
    "dst_host_srv_count",
    "class",
    "campaign",
    "stage",
];

/// The CSV header line (no trailing newline).
pub fn kdd_header() -> String {
    KDD_COLUMNS.join(",")
}

/// Well-known service name for a responder port, KDD vocabulary where a
/// mapping exists; unknown ports map to `private`, ICMP to `ecr_i`.
pub fn service_name(protocol: Protocol, dst_port: u16) -> &'static str {
    if protocol == Protocol::Icmp {
        return "ecr_i";
    }
    match (protocol, dst_port) {
        (Protocol::Udp, 53) => "domain_u",
        (Protocol::Tcp, 53) => "domain",
        (_, 20) => "ftp_data",
        (_, 21) => "ftp",
        (_, 22) => "ssh",
        (_, 23) => "telnet",
        (_, 25) => "smtp",
        (_, 80) => "http",
        (_, 110) => "pop_3",
        (_, 123) => "ntp_u",
        (_, 143) => "imap4",
        (_, 443) => "http_443",
        (_, 445) => "smb",
        (_, 3306) => "sql_net",
        _ => "private",
    }
}

/// SYN-error states: the connection never completed its handshake, which is
/// what KDD's `serror` family of features counts.
fn is_serror(state: TcpConnState) -> bool {
    matches!(state, TcpConnState::S0 | TcpConnState::S1 | TcpConnState::Sh)
}

/// Fixed two-decimal rendering of `num / denom`; `0.00` when the denominator
/// is zero. Small-integer IEEE-754 division plus Rust's float formatting is
/// bit-stable across platforms, which the golden export test relies on.
fn rate(num: usize, denom: usize) -> String {
    if denom == 0 {
        "0.00".to_string()
    } else {
        format!("{:.2}", num as f64 / denom as f64)
    }
}

/// Renders labeled flows as KDD-style CSV rows (no header; one line per
/// flow, in time order).
///
/// Traffic features are computed over the time-sorted stream: `count`,
/// `srv_count`, and the rate features look back [`WINDOW_MICROS`] from each
/// flow's first packet (inclusive of the flow itself); `dst_host_*` features
/// look back over the previous [`HOST_WINDOW`] flows. Input order does not
/// matter — rows are emitted in the same canonical order the assembler
/// produces.
pub fn kdd_rows(flows: &[LabeledFlow]) -> Vec<String> {
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_unstable_by_key(|&i| {
        let f = &flows[i].flow;
        (f.first_ts_micros, f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.protocol.number())
    });

    // Two-second trailing window, advanced with a second pointer; per-key
    // occupancy counts are maintained incrementally so the pass is O(n).
    let mut window: VecDeque<usize> = VecDeque::new();
    let mut by_dst: HashMap<u32, usize> = HashMap::new();
    let mut by_srv: HashMap<(Protocol, u16), usize> = HashMap::new();
    let mut by_dst_srv: HashMap<(u32, u16), usize> = HashMap::new();
    let mut serror_by_dst: HashMap<u32, usize> = HashMap::new();
    let mut serror_by_srv: HashMap<(Protocol, u16), usize> = HashMap::new();

    // Last-HOST_WINDOW connection ring for the dst_host_* features.
    let mut host_ring: VecDeque<(u32, u16)> = VecDeque::new();

    let mut rows = Vec::with_capacity(flows.len());
    for &i in &order {
        let lf = &flows[i];
        let f = &lf.flow;
        let srv = (f.protocol, f.dst_port);

        // Evict flows older than the window.
        while let Some(&old) = window.front() {
            let of = &flows[old].flow;
            if f.first_ts_micros.saturating_sub(of.first_ts_micros) <= WINDOW_MICROS {
                break;
            }
            window.pop_front();
            let okey = (of.protocol, of.dst_port);
            *by_dst.get_mut(&of.dst_ip).unwrap() -= 1;
            *by_srv.get_mut(&okey).unwrap() -= 1;
            *by_dst_srv.get_mut(&(of.dst_ip, of.dst_port)).unwrap() -= 1;
            if is_serror(of.state) {
                *serror_by_dst.get_mut(&of.dst_ip).unwrap() -= 1;
                *serror_by_srv.get_mut(&okey).unwrap() -= 1;
            }
        }

        // Admit the current flow, then read the window features.
        window.push_back(i);
        *by_dst.entry(f.dst_ip).or_insert(0) += 1;
        *by_srv.entry(srv).or_insert(0) += 1;
        *by_dst_srv.entry((f.dst_ip, f.dst_port)).or_insert(0) += 1;
        if is_serror(f.state) {
            *serror_by_dst.entry(f.dst_ip).or_insert(0) += 1;
            *serror_by_srv.entry(srv).or_insert(0) += 1;
        }

        let count = by_dst[&f.dst_ip];
        let srv_count = by_srv[&srv];
        let serror = serror_by_dst.get(&f.dst_ip).copied().unwrap_or(0);
        let srv_serror = serror_by_srv.get(&srv).copied().unwrap_or(0);
        let same_srv = by_dst_srv[&(f.dst_ip, f.dst_port)];

        host_ring.push_back((f.dst_ip, f.dst_port));
        if host_ring.len() > HOST_WINDOW {
            host_ring.pop_front();
        }
        let dst_host_count = host_ring.iter().filter(|&&(ip, _)| ip == f.dst_ip).count();
        let dst_host_srv_count =
            host_ring.iter().filter(|&&(ip, p)| ip == f.dst_ip && p == f.dst_port).count();

        let land = u8::from(f.src_ip == f.dst_ip && f.src_port == f.dst_port);
        let proto = match f.protocol {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Icmp => "icmp",
        };
        rows.push(format!(
            "{}.{:02},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            f.duration_ms / 1000,
            (f.duration_ms % 1000) / 10,
            proto,
            service_name(f.protocol, f.dst_port),
            f.state,
            f.out_bytes,
            f.in_bytes,
            land,
            count,
            srv_count,
            rate(serror, count),
            rate(srv_serror, srv_count),
            rate(same_srv, count),
            dst_host_count,
            dst_host_srv_count,
            lf.label.class.kdd_name(),
            lf.label.campaign,
            lf.label.stage,
        ));
    }
    rows
}

/// Full CSV document: header line plus one row per flow, `\n`-terminated.
pub fn kdd_csv(flows: &[LabeledFlow]) -> String {
    let mut out = kdd_header();
    out.push('\n');
    for row in kdd_rows(flows) {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowRecord;
    use crate::traffic::campaign::{AttackClass, FlowLabel};

    fn flow(ts_micros: u64, src: u32, dst: u32, dst_port: u16, state: TcpConnState) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40000,
            dst_port,
            duration_ms: 1540,
            out_bytes: 300,
            in_bytes: 500,
            out_pkts: 5,
            in_pkts: 4,
            state,
            syn_count: 1,
            ack_count: 3,
            first_ts_micros: ts_micros,
        }
    }

    fn benign(f: FlowRecord) -> LabeledFlow {
        LabeledFlow { flow: f, label: FlowLabel::BENIGN }
    }

    #[test]
    fn header_and_rows_have_matching_arity() {
        let flows = vec![benign(flow(0, 1, 2, 80, TcpConnState::Sf))];
        let rows = kdd_rows(&flows);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].split(',').count(), KDD_COLUMNS.len());
        assert_eq!(kdd_header().split(',').count(), KDD_COLUMNS.len());
    }

    #[test]
    fn basic_fields_render_deterministically() {
        let flows = vec![LabeledFlow {
            flow: flow(0, 1, 2, 80, TcpConnState::Sf),
            label: FlowLabel { campaign: 7, stage: 2, class: AttackClass::C2 },
        }];
        let row = &kdd_rows(&flows)[0];
        assert_eq!(row, "1.54,tcp,http,SF,300,500,0,1,1,0.00,0.00,1.00,1,1,c2,7,2");
    }

    #[test]
    fn two_second_window_counts_only_recent_flows() {
        // Three flows to the same responder: the third arrives 2.5s after the
        // first, so only the second remains in its window.
        let flows = vec![
            benign(flow(0, 1, 9, 80, TcpConnState::S0)),
            benign(flow(1_000_000, 2, 9, 80, TcpConnState::Sf)),
            benign(flow(2_500_000, 3, 9, 80, TcpConnState::Sf)),
        ];
        let rows = kdd_rows(&flows);
        let count_of = |r: &String| r.split(',').nth(7).unwrap().parse::<usize>().unwrap();
        assert_eq!(count_of(&rows[0]), 1);
        assert_eq!(count_of(&rows[1]), 2);
        assert_eq!(count_of(&rows[2]), 2, "first flow fell out of the 2s window");
        // serror_rate of the second row: one S0 among two flows to dst 9.
        assert_eq!(rows[1].split(',').nth(9).unwrap(), "0.50");
        assert_eq!(rows[2].split(',').nth(9).unwrap(), "0.00");
    }

    #[test]
    fn srv_count_tracks_service_not_host() {
        let flows = vec![
            benign(flow(0, 1, 9, 443, TcpConnState::Sf)),
            benign(flow(100, 1, 10, 443, TcpConnState::Sf)),
            benign(flow(200, 1, 9, 80, TcpConnState::Sf)),
        ];
        let rows = kdd_rows(&flows);
        let srv_of = |r: &String| r.split(',').nth(8).unwrap().parse::<usize>().unwrap();
        assert_eq!(srv_of(&rows[1]), 2, "two https flows in window");
        assert_eq!(srv_of(&rows[2]), 1, "http is its own service");
        // same_srv_rate of row 2: dst 9 saw one 443 flow and one 80 flow.
        assert_eq!(rows[2].split(',').nth(11).unwrap(), "0.50");
    }

    #[test]
    fn dst_host_window_is_bounded_at_100() {
        let mut flows: Vec<LabeledFlow> =
            (0..130u64).map(|i| benign(flow(i * 10_000_000, 1, 9, 80, TcpConnState::Sf))).collect();
        flows.push(benign(flow(131 * 10_000_000, 1, 9, 80, TcpConnState::Sf)));
        let rows = kdd_rows(&flows);
        let host_count = rows.last().unwrap().split(',').nth(12).unwrap().parse::<usize>().unwrap();
        assert_eq!(host_count, HOST_WINDOW);
    }

    #[test]
    fn land_flag_fires_on_self_connection() {
        let mut f = flow(0, 5, 5, 80, TcpConnState::Sf);
        f.src_port = 80;
        let rows = kdd_rows(&[benign(f)]);
        assert_eq!(rows[0].split(',').nth(6).unwrap(), "1");
    }

    #[test]
    fn rows_are_input_order_independent() {
        let a = vec![
            benign(flow(0, 1, 9, 80, TcpConnState::Sf)),
            benign(flow(500, 2, 9, 80, TcpConnState::S0)),
            benign(flow(900, 3, 8, 53, TcpConnState::Oth)),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(kdd_rows(&a), kdd_rows(&b));
    }

    #[test]
    fn service_map_covers_campaign_ports() {
        assert_eq!(service_name(Protocol::Tcp, 22), "ssh");
        assert_eq!(service_name(Protocol::Tcp, 443), "http_443");
        assert_eq!(service_name(Protocol::Udp, 53), "domain_u");
        assert_eq!(service_name(Protocol::Tcp, 12345), "private");
        assert_eq!(service_name(Protocol::Icmp, 0), "ecr_i");
    }
}
