//! A captured trace: time-ordered packets plus ground-truth attack labels.

use self::summaries::TraceSummary;
use crate::packet::Packet;

/// The category of an injected attack, mirroring the attack taxonomy of paper
/// Section IV (flooding and scanning attacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    /// TCP SYN flood toward one victim port.
    SynFlood,
    /// ICMP echo flood.
    IcmpFlood,
    /// UDP datagram flood.
    UdpFlood,
    /// Generic TCP flood (established-looking junk traffic).
    TcpFlood,
    /// Distributed flood: many sources, one victim.
    Ddos,
    /// Port scan of a single host (many destination ports).
    HostScan,
    /// Sweep of many hosts on one port (many destination IPs).
    NetworkScan,
    /// Smurf: ICMP echo requests with the victim's spoofed source sent to a
    /// broadcast population, whose replies flood the victim.
    Smurf,
    /// Fraggle: the UDP variant of Smurf (spoofed echo/chargen datagrams).
    Fraggle,
}

impl AttackKind {
    /// All kinds, for enumeration in tests and reports.
    pub const ALL: [AttackKind; 9] = [
        AttackKind::SynFlood,
        AttackKind::IcmpFlood,
        AttackKind::UdpFlood,
        AttackKind::TcpFlood,
        AttackKind::Ddos,
        AttackKind::HostScan,
        AttackKind::NetworkScan,
        AttackKind::Smurf,
        AttackKind::Fraggle,
    ];
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttackKind::SynFlood => "syn-flood",
            AttackKind::IcmpFlood => "icmp-flood",
            AttackKind::UdpFlood => "udp-flood",
            AttackKind::TcpFlood => "tcp-flood",
            AttackKind::Ddos => "ddos",
            AttackKind::HostScan => "host-scan",
            AttackKind::NetworkScan => "network-scan",
            AttackKind::Smurf => "smurf",
            AttackKind::Fraggle => "fraggle",
        };
        write!(f, "{s}")
    }
}

/// Ground truth for one injected attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackLabel {
    /// What was injected.
    pub kind: AttackKind,
    /// Primary attacker address (one of them, for DDoS).
    pub attacker: u32,
    /// Victim address (the scanned /24 base for network scans).
    pub victim: u32,
    /// Attack window start, microseconds.
    pub start_micros: u64,
    /// Attack window end, microseconds.
    pub end_micros: u64,
}

/// A packet trace with ground-truth labels.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Packets, kept sorted by timestamp.
    pub packets: Vec<Packet>,
    /// Ground-truth labels for injected attacks (empty for benign traces).
    pub labels: Vec<AttackLabel>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts packets by timestamp (stable, so simultaneous packets keep
    /// injection order).
    pub fn sort(&mut self) {
        self.packets.sort_by_key(|p| p.ts_micros);
    }

    /// Appends another trace's packets and labels.
    ///
    /// **Invariant caveat:** this concatenates; it does *not* re-sort, so the
    /// result violates the "packets sorted by timestamp" invariant whenever
    /// the two traces overlap in time. Callers must either call
    /// [`Trace::sort`] afterwards (the attack-injector path does) or use
    /// [`Trace::merge_sorted`], which preserves the invariant directly.
    pub fn merge(&mut self, other: Trace) {
        self.packets.extend(other.packets);
        self.labels.extend(other.labels);
    }

    /// Merges another trace, keeping packets time-ordered.
    ///
    /// Both inputs must already be sorted by timestamp (the documented trace
    /// invariant); the merge is a stable two-way merge, so on timestamp ties
    /// `self`'s packets precede `other`'s and each side keeps its internal
    /// order. This is O(n + m) — the campaign scheduler uses it to interleave
    /// stage traces without a full re-sort.
    pub fn merge_sorted(&mut self, other: Trace) {
        debug_assert!(self.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        debug_assert!(other.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        let left = std::mem::take(&mut self.packets);
        self.packets = Vec::with_capacity(left.len() + other.packets.len());
        let (mut a, mut b) = (left.into_iter().peekable(), other.packets.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.ts_micros <= y.ts_micros {
                        self.packets.push(a.next().expect("peeked"));
                    } else {
                        self.packets.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => self.packets.extend(a.by_ref()),
                (None, Some(_)) => self.packets.extend(b.by_ref()),
                (None, None) => break,
            }
        }
        self.labels.extend(other.labels);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Duration from first to last packet, microseconds (0 when < 2 packets).
    pub fn duration_micros(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_micros.saturating_sub(a.ts_micros),
            _ => 0,
        }
    }

    /// Computes summary statistics of the trace.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::of(self)
    }
}

/// Summary statistics live in a sibling module to keep this one small.
pub mod summaries {
    use super::Trace;
    use crate::flow::Protocol;
    use std::collections::HashSet;

    /// Aggregate characteristics of a trace.
    #[derive(Debug, Clone, PartialEq)]
    pub struct TraceSummary {
        /// Total packets.
        pub packets: usize,
        /// Distinct hosts appearing as source or destination.
        pub hosts: usize,
        /// TCP packet count.
        pub tcp: usize,
        /// UDP packet count.
        pub udp: usize,
        /// ICMP packet count.
        pub icmp: usize,
        /// Total payload bytes.
        pub bytes: u64,
        /// Trace duration in seconds.
        pub duration_secs: f64,
    }

    impl TraceSummary {
        /// Computes the summary in one pass.
        pub fn of(trace: &Trace) -> Self {
            let mut hosts = HashSet::new();
            let (mut tcp, mut udp, mut icmp) = (0usize, 0usize, 0usize);
            let mut bytes = 0u64;
            for p in &trace.packets {
                hosts.insert(p.src_ip);
                hosts.insert(p.dst_ip);
                match p.protocol {
                    Protocol::Tcp => tcp += 1,
                    Protocol::Udp => udp += 1,
                    Protocol::Icmp => icmp += 1,
                }
                bytes += p.payload_len as u64;
            }
            TraceSummary {
                packets: trace.packets.len(),
                hosts: hosts.len(),
                tcp,
                udp,
                icmp,
                bytes,
                duration_secs: trace.duration_micros() as f64 / 1e6,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ip, TcpFlags};

    #[test]
    fn sort_orders_by_timestamp() {
        let mut t = Trace::new();
        t.packets.push(Packet::icmp(500, ip(1, 0, 0, 1), ip(1, 0, 0, 2), 8));
        t.packets.push(Packet::icmp(100, ip(1, 0, 0, 3), ip(1, 0, 0, 4), 8));
        t.sort();
        assert_eq!(t.packets[0].ts_micros, 100);
        assert_eq!(t.duration_micros(), 400);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Trace::new();
        a.packets.push(Packet::icmp(0, 1, 2, 8));
        let mut b = Trace::new();
        b.packets.push(Packet::icmp(1, 3, 4, 8));
        b.labels.push(AttackLabel {
            kind: AttackKind::HostScan,
            attacker: 3,
            victim: 4,
            start_micros: 0,
            end_micros: 1,
        });
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.labels.len(), 1);
    }

    #[test]
    fn merge_sorted_interleaves_two_stages() {
        // Two overlapping "stages": merge_sorted must interleave by time
        // where plain merge would leave packets out of order.
        let mut a = Trace::new();
        for t in [0u64, 200, 400, 600] {
            a.packets.push(Packet::icmp(t, 1, 2, 8));
        }
        let mut b = Trace::new();
        for t in [100u64, 300, 400, 500] {
            b.packets.push(Packet::icmp(t, 3, 4, 8));
        }
        b.labels.push(AttackLabel {
            kind: AttackKind::HostScan,
            attacker: 3,
            victim: 4,
            start_micros: 100,
            end_micros: 500,
        });
        let mut concat = a.clone();
        concat.merge(b.clone());
        assert!(
            concat.packets.windows(2).any(|w| w[0].ts_micros > w[1].ts_micros),
            "plain merge of overlapping traces must be out of order (else this test is vacuous)"
        );
        a.merge_sorted(b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.labels.len(), 1);
        assert!(a.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        // Stable on ties: at t=400 the left trace's packet comes first.
        let at_400: Vec<u32> =
            a.packets.iter().filter(|p| p.ts_micros == 400).map(|p| p.src_ip).collect();
        assert_eq!(at_400, vec![1, 3]);
    }

    #[test]
    fn merge_sorted_handles_empty_sides() {
        let mut a = Trace::new();
        a.merge_sorted(Trace::new());
        assert!(a.is_empty());
        let mut b = Trace::new();
        b.packets.push(Packet::icmp(7, 1, 2, 8));
        a.merge_sorted(b);
        assert_eq!(a.len(), 1);
        let mut c = Trace::new();
        c.packets.push(Packet::icmp(3, 5, 6, 8));
        c.merge_sorted(a);
        assert_eq!(c.packets[0].ts_micros, 3);
        assert_eq!(c.packets[1].ts_micros, 7);
    }

    #[test]
    fn summary_counts_protocols_and_hosts() {
        let mut t = Trace::new();
        t.packets.push(Packet::tcp(0, 1, 10, 2, 80, TcpFlags::SYN, 100));
        t.packets.push(Packet::udp(1_000_000, 1, 10, 3, 53, 50));
        t.packets.push(Packet::icmp(2_000_000, 2, 3, 8));
        let s = t.summary();
        assert_eq!(s.packets, 3);
        assert_eq!(s.hosts, 3);
        assert_eq!(s.tcp, 1);
        assert_eq!(s.udp, 1);
        assert_eq!(s.icmp, 1);
        assert_eq!(s.bytes, 158);
        assert!((s.duration_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration_micros(), 0);
        assert_eq!(t.summary().hosts, 0);
    }
}
