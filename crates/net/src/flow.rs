//! The NetFlow record type: one record per TCP connection or UDP/ICMP stream,
//! carrying exactly the edge attributes of paper Section III.

use std::fmt;

/// Transport protocol of a flow. The paper supports TCP and UDP; ICMP is
//  additionally modeled because the Section IV detector reasons about ICMP
//  floods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
}

impl Protocol {
    /// IANA protocol number, as carried in the IPv4 header.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// Parses an IANA protocol number.
    pub const fn from_number(n: u8) -> Option<Self> {
        match n {
            1 => Some(Protocol::Icmp),
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            _ => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Icmp => write!(f, "ICMP"),
        }
    }
}

/// Bro-style TCP connection state, the `STATE` edge attribute.
///
/// Matches Bro/Zeek's `conn_state` vocabulary for the states our state
/// machine can distinguish; non-TCP flows use [`TcpConnState::Oth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TcpConnState {
    /// Connection attempt seen (SYN), no reply.
    S0,
    /// Connection established (SYN, SYN-ACK), not terminated.
    S1,
    /// Normal establishment and termination (FIN exchange completed).
    Sf,
    /// Connection attempt rejected (SYN answered by RST).
    Rej,
    /// Established, originator aborted with RST.
    Rsto,
    /// Established, responder aborted with RST.
    Rstr,
    /// Originator sent SYN+FIN but no responder reply ("half-open scan").
    Sh,
    /// Anything else (mid-stream traffic, non-TCP, no handshake seen).
    Oth,
}

impl TcpConnState {
    /// All distinct states, for histogramming.
    pub const ALL: [TcpConnState; 8] = [
        TcpConnState::S0,
        TcpConnState::S1,
        TcpConnState::Sf,
        TcpConnState::Rej,
        TcpConnState::Rsto,
        TcpConnState::Rstr,
        TcpConnState::Sh,
        TcpConnState::Oth,
    ];

    /// Stable small integer code (used when states are stored as edge
    /// property values).
    pub const fn code(self) -> u64 {
        match self {
            TcpConnState::S0 => 0,
            TcpConnState::S1 => 1,
            TcpConnState::Sf => 2,
            TcpConnState::Rej => 3,
            TcpConnState::Rsto => 4,
            TcpConnState::Rstr => 5,
            TcpConnState::Sh => 6,
            TcpConnState::Oth => 7,
        }
    }

    /// Inverse of [`TcpConnState::code`].
    pub const fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(TcpConnState::S0),
            1 => Some(TcpConnState::S1),
            2 => Some(TcpConnState::Sf),
            3 => Some(TcpConnState::Rej),
            4 => Some(TcpConnState::Rsto),
            5 => Some(TcpConnState::Rstr),
            6 => Some(TcpConnState::Sh),
            7 => Some(TcpConnState::Oth),
            _ => None,
        }
    }
}

impl fmt::Display for TcpConnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TcpConnState::S0 => "S0",
            TcpConnState::S1 => "S1",
            TcpConnState::Sf => "SF",
            TcpConnState::Rej => "REJ",
            TcpConnState::Rsto => "RSTO",
            TcpConnState::Rstr => "RSTR",
            TcpConnState::Sh => "SH",
            TcpConnState::Oth => "OTH",
        };
        write!(f, "{s}")
    }
}

/// One NetFlow record: a TCP connection or UDP/ICMP stream between an
/// originator (`src`) and a responder (`dst`).
///
/// Field names mirror the paper's `De` attribute list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Originator address.
    pub src_ip: u32,
    /// Responder address.
    pub dst_ip: u32,
    /// PROTOCOL attribute.
    pub protocol: Protocol,
    /// SRC_PORT attribute.
    pub src_port: u16,
    /// DEST_PORT attribute.
    pub dst_port: u16,
    /// DURATION attribute, milliseconds.
    pub duration_ms: u64,
    /// OUT_BYTES: bytes from originator to responder.
    pub out_bytes: u64,
    /// IN_BYTES: bytes from responder to originator.
    pub in_bytes: u64,
    /// OUT_PKTS: packets from originator to responder.
    pub out_pkts: u64,
    /// IN_PKTS: packets from responder to originator.
    pub in_pkts: u64,
    /// STATE attribute (TCP connection state; `Oth` for UDP/ICMP).
    pub state: TcpConnState,
    /// Number of SYN-flagged packets seen (used by the Section IV detector's
    /// `N(SYN)` parameter).
    pub syn_count: u32,
    /// Number of ACK-flagged packets seen (`N(ACK)`).
    pub ack_count: u32,
    /// Timestamp of the first packet, microseconds since trace epoch.
    pub first_ts_micros: u64,
}

impl FlowRecord {
    /// Total packets in both directions.
    pub fn total_pkts(&self) -> u64 {
        self.out_pkts + self.in_pkts
    }

    /// Total bytes in both directions (the detector's "flow size").
    pub fn total_bytes(&self) -> u64 {
        self.out_bytes + self.in_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_round_trip() {
        for p in [Protocol::Tcp, Protocol::Udp, Protocol::Icmp] {
            assert_eq!(Protocol::from_number(p.number()), Some(p));
        }
        assert_eq!(Protocol::from_number(42), None);
    }

    #[test]
    fn state_codes_round_trip() {
        for s in TcpConnState::ALL {
            assert_eq!(TcpConnState::from_code(s.code()), Some(s));
        }
        assert_eq!(TcpConnState::from_code(99), None);
    }

    #[test]
    fn state_display_matches_bro_vocabulary() {
        assert_eq!(TcpConnState::Sf.to_string(), "SF");
        assert_eq!(TcpConnState::Rej.to_string(), "REJ");
        assert_eq!(TcpConnState::S0.to_string(), "S0");
    }

    #[test]
    fn flow_totals() {
        let f = FlowRecord {
            src_ip: 1,
            dst_ip: 2,
            protocol: Protocol::Tcp,
            src_port: 1000,
            dst_port: 80,
            duration_ms: 5,
            out_bytes: 100,
            in_bytes: 900,
            out_pkts: 3,
            in_pkts: 4,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 6,
            first_ts_micros: 0,
        };
        assert_eq!(f.total_pkts(), 7);
        assert_eq!(f.total_bytes(), 1000);
    }
}
