//! The packet model: the subset of IPv4/TCP/UDP/ICMP header state the flow
//! assembler and the IDS need.
//!
//! Addresses are stored as raw `u32`s (host byte order) rather than
//! `std::net::Ipv4Addr` so packets stay `Copy` and hash fast; the display
//! helpers render dotted quads.

use crate::flow::Protocol;
use std::fmt;

/// TCP flag bits, matching their on-the-wire positions in byte 13 of the TCP
/// header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is done sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: connection establishment.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: abort.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK as sent by a server accepting a connection.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// Empty flag set.
    pub const fn empty() -> Self {
        TcpFlags(0)
    }

    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[inline]
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True for a bare SYN (no ACK) — a connection attempt.
    #[inline]
    pub const fn is_syn_only(self) -> bool {
        self.0 & (Self::SYN.0 | Self::ACK.0) == Self::SYN.0
    }

    /// True for SYN+ACK — a connection acceptance.
    #[inline]
    pub const fn is_syn_ack(self) -> bool {
        self.contains(Self::SYN_ACK)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::FIN, 'F'),
            (Self::SYN, 'S'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
            (Self::ACK, 'A'),
        ];
        let mut any = false;
        for (bit, c) in names {
            if self.contains(bit) {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// One captured packet (the fields a NetFlow exporter cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp in microseconds since the trace epoch.
    pub ts_micros: u64,
    /// Source IPv4 address (host byte order).
    pub src_ip: u32,
    /// Destination IPv4 address (host byte order).
    pub dst_ip: u32,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// TCP flags (empty for non-TCP).
    pub flags: TcpFlags,
    /// Transport payload length in bytes.
    pub payload_len: u32,
}

impl Packet {
    /// Convenience constructor for a TCP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        ts_micros: u64,
        src_ip: u32,
        src_port: u16,
        dst_ip: u32,
        dst_port: u16,
        flags: TcpFlags,
        payload_len: u32,
    ) -> Self {
        Packet {
            ts_micros,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
            flags,
            payload_len,
        }
    }

    /// Convenience constructor for a UDP packet.
    pub fn udp(
        ts_micros: u64,
        src_ip: u32,
        src_port: u16,
        dst_ip: u32,
        dst_port: u16,
        payload_len: u32,
    ) -> Self {
        Packet {
            ts_micros,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: Protocol::Udp,
            flags: TcpFlags::empty(),
            payload_len,
        }
    }

    /// Convenience constructor for an ICMP packet (echo-style; ports are 0).
    pub fn icmp(ts_micros: u64, src_ip: u32, dst_ip: u32, payload_len: u32) -> Self {
        Packet {
            ts_micros,
            src_ip,
            dst_ip,
            src_port: 0,
            dst_port: 0,
            protocol: Protocol::Icmp,
            flags: TcpFlags::empty(),
            payload_len,
        }
    }

    /// Total on-the-wire IPv4 packet length (IP header + transport header +
    /// payload), as written to PCAP.
    pub fn wire_len(&self) -> u32 {
        let transport = match self.protocol {
            Protocol::Tcp => 20,
            Protocol::Udp => 8,
            Protocol::Icmp => 8,
        };
        20 + transport + self.payload_len
    }
}

/// Formats a raw `u32` address as a dotted quad.
pub fn fmt_ip(ip: u32) -> String {
    format!("{}.{}.{}.{}", ip >> 24, (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff)
}

/// Builds a raw `u32` address from four octets.
pub const fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    ((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.is_syn_ack());
        assert!(!f.is_syn_only());
        assert!(TcpFlags::SYN.is_syn_only());
    }

    #[test]
    fn flag_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags::empty().to_string(), ".");
        assert_eq!((TcpFlags::FIN | TcpFlags::PSH).to_string(), "FP");
    }

    #[test]
    fn ip_round_trip() {
        let addr = ip(192, 168, 1, 77);
        assert_eq!(fmt_ip(addr), "192.168.1.77");
        assert_eq!(addr, 0xC0A8014D);
    }

    #[test]
    fn wire_lengths() {
        let t = Packet::tcp(0, 1, 2, 3, 4, TcpFlags::SYN, 100);
        assert_eq!(t.wire_len(), 140);
        let u = Packet::udp(0, 1, 2, 3, 4, 100);
        assert_eq!(u.wire_len(), 128);
        let i = Packet::icmp(0, 1, 3, 56);
        assert_eq!(i.wire_len(), 84);
    }

    #[test]
    fn constructors_set_protocol() {
        assert_eq!(Packet::tcp(0, 1, 2, 3, 4, TcpFlags::SYN, 0).protocol, Protocol::Tcp);
        assert_eq!(Packet::udp(0, 1, 2, 3, 4, 0).protocol, Protocol::Udp);
        assert_eq!(Packet::icmp(0, 1, 3, 0).protocol, Protocol::Icmp);
        assert_eq!(Packet::icmp(0, 1, 3, 0).src_port, 0);
    }
}
