//! NetFlow v5 binary export format.
//!
//! The paper centers on NetFlow because flow records are accepted as court
//! evidence; a benchmark dataset must therefore round-trip through the real
//! export format. This module implements the classic v5 datagram layout:
//! a 24-byte header (version, count, uptime, unix time, sequence) followed
//! by up to 30 fixed 48-byte flow records.
//!
//! v5 carries one direction per record, so a bidirectional [`FlowRecord`]
//! exports as *two* records (the reverse one only when reverse traffic
//! exists), and import re-pairs them — mirroring how real exporters and
//! collectors behave.

use crate::flow::{FlowRecord, Protocol, TcpConnState};
use bytes::{Buf, BufMut};
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Maximum records per v5 datagram.
const MAX_RECORDS: usize = 30;
/// Header length in bytes.
const HEADER_LEN: usize = 24;
/// Record length in bytes.
const RECORD_LEN: usize = 48;

/// Errors from NetFlow (de)serialization.
#[derive(Debug)]
pub enum NetflowError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed datagram stream.
    BadFormat(String),
}

impl std::fmt::Display for NetflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetflowError::Io(e) => write!(f, "netflow I/O error: {e}"),
            NetflowError::BadFormat(m) => write!(f, "bad netflow: {m}"),
        }
    }
}

impl std::error::Error for NetflowError {}

impl From<io::Error> for NetflowError {
    fn from(e: io::Error) -> Self {
        NetflowError::Io(e)
    }
}

/// One direction of one flow, as a v5 record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct V5Record {
    src_ip: u32,
    dst_ip: u32,
    packets: u32,
    bytes: u32,
    first_ms: u32,
    last_ms: u32,
    src_port: u16,
    dst_port: u16,
    tcp_flags: u8,
    protocol: u8,
}

fn flow_to_records(f: &FlowRecord) -> Vec<V5Record> {
    let first_ms = (f.first_ts_micros / 1000) as u32;
    let last_ms = first_ms.saturating_add(f.duration_ms as u32);
    // Rough TCP flag summary for the forward direction.
    let tcp_flags = if f.protocol == Protocol::Tcp {
        match f.state {
            TcpConnState::S0 | TcpConnState::Sh => 0x02,     // SYN
            TcpConnState::Rej => 0x06,                       // SYN|RST
            TcpConnState::Sf => 0x13,                        // SYN|ACK|FIN
            TcpConnState::Rsto | TcpConnState::Rstr => 0x16, // SYN|ACK|RST
            _ => 0x10,
        }
    } else {
        0
    };
    let mut out = vec![V5Record {
        src_ip: f.src_ip,
        dst_ip: f.dst_ip,
        packets: f.out_pkts as u32,
        bytes: f.out_bytes as u32,
        first_ms,
        last_ms,
        src_port: f.src_port,
        dst_port: f.dst_port,
        tcp_flags,
        protocol: f.protocol.number(),
    }];
    if f.in_pkts > 0 {
        out.push(V5Record {
            src_ip: f.dst_ip,
            dst_ip: f.src_ip,
            packets: f.in_pkts as u32,
            bytes: f.in_bytes as u32,
            first_ms,
            last_ms,
            src_port: f.dst_port,
            dst_port: f.src_port,
            tcp_flags,
            protocol: f.protocol.number(),
        });
    }
    out
}

/// Writes flows as a sequence of NetFlow v5 datagrams.
pub fn write_netflow_v5<W: Write>(mut w: W, flows: &[FlowRecord]) -> Result<(), NetflowError> {
    let records: Vec<V5Record> = flows.iter().flat_map(flow_to_records).collect();
    let mut sequence = 0u32;
    for chunk in records.chunks(MAX_RECORDS.max(1)) {
        let mut buf = Vec::with_capacity(HEADER_LEN + chunk.len() * RECORD_LEN);
        buf.put_u16(5); // version
        buf.put_u16(chunk.len() as u16);
        buf.put_u32(0); // sys uptime
        buf.put_u32(0); // unix secs
        buf.put_u32(0); // unix nsecs
        buf.put_u32(sequence);
        buf.put_u8(0); // engine type
        buf.put_u8(0); // engine id
        buf.put_u16(0); // sampling
        for r in chunk {
            buf.put_u32(r.src_ip);
            buf.put_u32(r.dst_ip);
            buf.put_u32(0); // next hop
            buf.put_u16(0); // input iface
            buf.put_u16(0); // output iface
            buf.put_u32(r.packets);
            buf.put_u32(r.bytes);
            buf.put_u32(r.first_ms);
            buf.put_u32(r.last_ms);
            buf.put_u16(r.src_port);
            buf.put_u16(r.dst_port);
            buf.put_u8(0); // pad
            buf.put_u8(r.tcp_flags);
            buf.put_u8(r.protocol);
            buf.put_u8(0); // tos
            buf.put_u16(0); // src AS
            buf.put_u16(0); // dst AS
            buf.put_u8(0); // src mask
            buf.put_u8(0); // dst mask
            buf.put_u16(0); // pad
        }
        w.write_all(&buf)?;
        sequence = sequence.wrapping_add(chunk.len() as u32);
    }
    Ok(())
}

/// Reads v5 datagrams back into bidirectional flows, re-pairing forward and
/// reverse records on the 5-tuple.
pub fn read_netflow_v5<R: Read>(mut r: R) -> Result<Vec<FlowRecord>, NetflowError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    let mut buf = &data[..];
    let mut records: Vec<V5Record> = Vec::new();
    while buf.has_remaining() {
        if buf.remaining() < HEADER_LEN {
            return Err(NetflowError::BadFormat("truncated header".into()));
        }
        let version = buf.get_u16();
        if version != 5 {
            return Err(NetflowError::BadFormat(format!("unsupported version {version}")));
        }
        let count = buf.get_u16() as usize;
        if count > MAX_RECORDS {
            return Err(NetflowError::BadFormat(format!("record count {count} exceeds 30")));
        }
        buf.advance(HEADER_LEN - 4);
        if buf.remaining() < count * RECORD_LEN {
            return Err(NetflowError::BadFormat("truncated records".into()));
        }
        for _ in 0..count {
            let src_ip = buf.get_u32();
            let dst_ip = buf.get_u32();
            buf.advance(8); // next hop + ifaces
            let packets = buf.get_u32();
            let bytes = buf.get_u32();
            let first_ms = buf.get_u32();
            let last_ms = buf.get_u32();
            let src_port = buf.get_u16();
            let dst_port = buf.get_u16();
            buf.advance(1);
            let tcp_flags = buf.get_u8();
            let protocol = buf.get_u8();
            buf.advance(9);
            records.push(V5Record {
                src_ip,
                dst_ip,
                packets,
                bytes,
                first_ms,
                last_ms,
                src_port,
                dst_port,
                tcp_flags,
                protocol,
            });
        }
    }

    // Re-pair: the first record of a 5-tuple is the forward direction (the
    // writer emits forward first); a later record on the reversed tuple is
    // folded in as the reverse direction.
    let mut flows: Vec<FlowRecord> = Vec::new();
    let mut open: HashMap<(u32, u32, u16, u16, u8), usize> = HashMap::new();
    for r in records {
        let reverse_key = (r.dst_ip, r.src_ip, r.dst_port, r.src_port, r.protocol);
        if let Some(idx) = open.remove(&reverse_key) {
            let f = &mut flows[idx];
            f.in_pkts = r.packets as u64;
            f.in_bytes = r.bytes as u64;
            continue;
        }
        let protocol = Protocol::from_number(r.protocol)
            .ok_or_else(|| NetflowError::BadFormat(format!("bad protocol {}", r.protocol)))?;
        let state = if protocol == Protocol::Tcp {
            match r.tcp_flags {
                0x02 => TcpConnState::S0,
                0x06 => TcpConnState::Rej,
                0x13 => TcpConnState::Sf,
                0x16 => TcpConnState::Rsto,
                _ => TcpConnState::Oth,
            }
        } else {
            TcpConnState::Oth
        };
        let key = (r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.protocol);
        open.insert(key, flows.len());
        flows.push(FlowRecord {
            src_ip: r.src_ip,
            dst_ip: r.dst_ip,
            protocol,
            src_port: r.src_port,
            dst_port: r.dst_port,
            duration_ms: (r.last_ms - r.first_ms) as u64,
            out_bytes: r.bytes as u64,
            in_bytes: 0,
            out_pkts: r.packets as u64,
            in_pkts: 0,
            state,
            syn_count: u32::from(r.tcp_flags & 0x02 != 0),
            ack_count: u32::from(r.tcp_flags & 0x10 != 0),
            first_ts_micros: r.first_ms as u64 * 1000,
        });
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ip;

    fn flow(src: u32, dst: u32, dport: u16, out: (u64, u64), inn: (u64, u64)) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40_000,
            dst_port: dport,
            duration_ms: 1500,
            out_bytes: out.0,
            in_bytes: inn.0,
            out_pkts: out.1,
            in_pkts: inn.1,
            state: TcpConnState::Sf,
            syn_count: 2,
            ack_count: 9,
            first_ts_micros: 7_000_000,
        }
    }

    #[test]
    fn round_trip_preserves_flow_essence() {
        let flows = vec![
            flow(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 80, (1234, 7), (99_000, 70)),
            flow(ip(10, 0, 0, 3), ip(10, 0, 0, 2), 443, (500, 4), (0, 0)),
        ];
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &flows).expect("write");
        let parsed = read_netflow_v5(&bytes[..]).expect("read");
        assert_eq!(parsed.len(), 2);
        let f = &parsed[0];
        assert_eq!(f.src_ip, flows[0].src_ip);
        assert_eq!(f.dst_ip, flows[0].dst_ip);
        assert_eq!(f.dst_port, 80);
        assert_eq!(f.out_bytes, 1234);
        assert_eq!(f.out_pkts, 7);
        assert_eq!(f.in_bytes, 99_000);
        assert_eq!(f.in_pkts, 70);
        assert_eq!(f.duration_ms, 1500);
        assert_eq!(f.state, TcpConnState::Sf);
        assert_eq!(f.first_ts_micros, 7_000_000);
        // One-directional flow stays one-directional.
        assert_eq!(parsed[1].in_pkts, 0);
    }

    #[test]
    fn datagram_layout_is_v5() {
        let flows = vec![flow(1, 2, 80, (10, 1), (0, 0))];
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &flows).expect("write");
        assert_eq!(bytes.len(), HEADER_LEN + RECORD_LEN);
        assert_eq!(&bytes[0..2], &5u16.to_be_bytes()); // version
        assert_eq!(&bytes[2..4], &1u16.to_be_bytes()); // count
    }

    #[test]
    fn large_flow_sets_span_datagrams() {
        let flows: Vec<FlowRecord> =
            (0..100).map(|i| flow(i + 1, 1000 + i, 80, (10, 1), (20, 2))).collect();
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &flows).expect("write");
        // 200 records at 30/datagram = 7 datagrams.
        assert_eq!(bytes.len(), 7 * HEADER_LEN + 200 * RECORD_LEN);
        let parsed = read_netflow_v5(&bytes[..]).expect("read");
        assert_eq!(parsed.len(), 100);
        assert!(parsed.iter().all(|f| f.in_pkts == 2));
    }

    #[test]
    fn record_fields_sit_at_their_v5_offsets_in_big_endian() {
        // Pin the wire layout byte-for-byte: every multi-byte field is
        // network order (big-endian) at the offset rfc'd for v5. The store
        // crate's little-endian flow columns share these tests through
        // `tests/formats.rs`, so a drift in either format shows up.
        let mut f = flow(0x0A01_0203, 0xC0A8_0001, 0x1F90, (0x0001_E240, 0x1234), (0, 0));
        f.src_port = 0xABCD;
        f.first_ts_micros = 5_000_000; // first_ms = 5000, last_ms = 6500
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &[f]).expect("write");
        assert_eq!(bytes.len(), HEADER_LEN + RECORD_LEN);

        // Header: version, count, then the sequence number at offset 16.
        assert_eq!(&bytes[0..2], &5u16.to_be_bytes());
        assert_eq!(&bytes[2..4], &1u16.to_be_bytes());
        assert_eq!(&bytes[16..20], &0u32.to_be_bytes());

        let r = &bytes[HEADER_LEN..];
        assert_eq!(&r[0..4], &0x0A01_0203u32.to_be_bytes(), "src ip");
        assert_eq!(&r[4..8], &0xC0A8_0001u32.to_be_bytes(), "dst ip");
        assert_eq!(&r[8..12], &0u32.to_be_bytes(), "next hop");
        assert_eq!(&r[12..16], &[0u8; 4], "ifaces");
        assert_eq!(&r[16..20], &0x1234u32.to_be_bytes(), "packets");
        assert_eq!(&r[20..24], &0x0001_E240u32.to_be_bytes(), "bytes");
        assert_eq!(&r[24..28], &5000u32.to_be_bytes(), "first ms");
        assert_eq!(&r[28..32], &6500u32.to_be_bytes(), "last ms");
        assert_eq!(&r[32..34], &0xABCDu16.to_be_bytes(), "src port");
        assert_eq!(&r[34..36], &0x1F90u16.to_be_bytes(), "dst port");
        assert_eq!(r[36], 0, "pad");
        assert_eq!(r[37], 0x13, "tcp flags for Sf");
        assert_eq!(r[38], 6, "protocol");
        assert_eq!(&r[39..48], &[0u8; 9], "tos/AS/masks/pad");
    }

    #[test]
    fn sequence_number_counts_records_across_datagrams() {
        let flows: Vec<FlowRecord> =
            (0..40).map(|i| flow(i + 1, 1000 + i, 80, (10, 1), (0, 0))).collect();
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &flows).expect("write");
        // 40 one-directional records -> datagrams of 30 and 10; the second
        // header's sequence field carries the running record count.
        let second = HEADER_LEN + 30 * RECORD_LEN;
        assert_eq!(&bytes[second + 2..second + 4], &10u16.to_be_bytes());
        assert_eq!(&bytes[second + 16..second + 20], &30u32.to_be_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_netflow_v5(&b"nonsense"[..]).is_err());
        let mut bad_version = Vec::new();
        bad_version.put_u16(9);
        bad_version.extend_from_slice(&[0u8; 22]);
        assert!(read_netflow_v5(&bad_version[..]).is_err());
    }

    #[test]
    fn udp_flows_round_trip() {
        let mut f = flow(5, 6, 53, (60, 1), (300, 1));
        f.protocol = Protocol::Udp;
        f.state = TcpConnState::Oth;
        let mut bytes = Vec::new();
        write_netflow_v5(&mut bytes, &[f]).expect("write");
        let parsed = read_netflow_v5(&bytes[..]).expect("read");
        assert_eq!(parsed[0].protocol, Protocol::Udp);
        assert_eq!(parsed[0].state, TcpConnState::Oth);
    }
}
