//! # csb-net
//!
//! Network-trace substrate for the `csb` generators.
//!
//! The paper's seed pipeline (Fig. 1) starts from a PCAP trace, extracts
//! NetFlow records with Bro IDS, and maps those onto a property-graph. The
//! original seed (the SMIA 2011 trace from the Swedish Department of Defense)
//! is not available, so this crate supplies every stage from scratch:
//!
//! * [`packet`] — the packet model (IPv4 / TCP / UDP / ICMP headers we care
//!   about).
//! * [`pcap`] — reader/writer for the classic libpcap capture file format, so
//!   traces round-trip through the on-disk format the paper consumes.
//! * [`tcp`] — a per-connection TCP state machine yielding Bro-style
//!   connection states (`S0`, `SF`, `REJ`, ...).
//! * [`assembler`] — the Bro-equivalent flow assembler: packets in, NetFlow
//!   records out (all nine edge attributes of paper Section III).
//! * [`flow`] — the NetFlow record type.
//! * [`traffic`] — an event-driven enterprise traffic simulator with
//!   heavy-tailed host popularity and application mixes, plus attack
//!   injectors (SYN flood, ICMP/UDP floods, DDoS, host/network scans) with
//!   ground-truth labels for evaluating the Section IV detector.
//! * [`trace`] — a captured trace: time-ordered packets plus attack labels.

pub mod assembler;
pub mod filter;
pub mod flow;
pub mod kdd;
pub mod netflow_v5;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod trace;
pub mod traffic;

pub use assembler::FlowAssembler;
pub use filter::Filter;
pub use flow::{FlowRecord, Protocol, TcpConnState};
pub use packet::{Packet, TcpFlags};
pub use trace::{AttackKind, AttackLabel, Trace};
pub use traffic::campaign::{AttackClass, FlowLabel, LabeledFlow};
