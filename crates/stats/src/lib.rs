//! # csb-stats
//!
//! Statistical substrate for the `csb` synthetic data generators.
//!
//! The paper's generators (PGPBA, PGSK) are driven entirely by *distributions*
//! extracted from a seed property-graph: in/out-degree distributions, NetFlow
//! attribute distributions, and the conditional distributions
//! `p(attr | IN_BYTES)` used to generate mutually consistent edge attributes.
//! This crate provides:
//!
//! * [`EmpiricalDistribution`] — discrete weighted distributions over `u64`
//!   values with O(1) alias-method sampling ([`alias::AliasTable`]).
//! * [`ConditionalDistribution`] — bucketed conditional empirical
//!   distributions, the `p(a | IN_BYTES)` machinery of the paper's
//!   "preliminary steps" (Fig. 1).
//! * [`powerlaw`] — discrete power-law fitting (MLE) and sampling, used to
//!   characterize and reproduce scale-free degree distributions.
//! * [`histogram`] — linear and logarithmic binning.
//! * [`veracity`] — the paper's veracity score: average Euclidean distance of
//!   normalized degree / PageRank distributions, plus KS, total-variation and
//!   RBF-kernel MMD distances.
//! * [`summary`] — streaming moments and quantiles.
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible bit-for-bit.

pub mod alias;
pub mod conditional;
pub mod continuous;
pub mod empirical;
pub mod histogram;
pub mod powerlaw;
pub mod reservoir;
pub mod rng;
pub mod summary;
pub mod veracity;

pub use alias::AliasTable;
pub use conditional::ConditionalDistribution;
pub use continuous::{zipf_weights, Exponential, LogNormal, Normal};
pub use empirical::EmpiricalDistribution;
pub use histogram::{Histogram, LogHistogram};
pub use powerlaw::PowerLaw;
pub use reservoir::Reservoir;
pub use summary::Summary;
pub use veracity::{
    average_euclidean_distance, ks_distance, median_heuristic_bandwidth, mmd_rbf, total_variation,
    NormalizedDistribution,
};
