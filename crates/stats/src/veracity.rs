//! Veracity metrics: how closely a synthetic dataset mimics its seed.
//!
//! The paper defines the veracity score of a synthetic dataset as "the
//! average Euclidean distance of their normalized degree and PageRank
//! distributions" (Section V-A), where each degree / PageRank value is
//! divided by the sum of all such values in its own graph. We make that
//! precise as follows:
//!
//! 1. Normalize each per-vertex value by the sum of values in its own graph
//!    (the paper's normalization). Both distributions now sum to 1.
//! 2. Sort both descending and align them by rank, zero-padding the shorter
//!    one (a graph's "missing" vertices contribute zero mass).
//! 3. Score = the mean squared per-rank difference, averaged over the
//!    aligned length.
//!
//! Because a synthetic graph three orders of magnitude larger than the seed
//! spreads its unit mass over correspondingly more vertices, its normalized
//! values shift "down-left" (exactly the shift visible in the paper's
//! Fig. 5), and the score decays roughly like `1 / |V_synth|` — reproducing
//! the monotone decrease of the paper's Figs. 6-7 and the tiny absolute
//! magnitudes it reports. PageRank scores come out far below degree scores
//! because damping compresses the PageRank range, shrinking every per-rank
//! difference — also as in the paper.

/// A graph's normalized value distribution: values divided by their sum,
/// sorted descending.
#[derive(Debug, Clone)]
pub struct NormalizedDistribution {
    /// Normalized values, descending; they sum to 1 (when non-empty input
    /// with positive mass).
    values: Vec<f64>,
    /// The paper's normalization constant: the sum of the raw values.
    total: f64,
}

impl NormalizedDistribution {
    /// Builds the normalized distribution from raw per-vertex values.
    ///
    /// # Panics
    /// Panics on negative or non-finite values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut total = 0.0;
        for &v in values {
            assert!(v.is_finite() && v >= 0.0, "distribution values must be finite and >= 0");
            total += v;
        }
        let mut normalized: Vec<f64> = if total > 0.0 {
            values.iter().map(|&v| v / total).collect()
        } else {
            vec![0.0; values.len()]
        };
        normalized.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite by validation"));
        NormalizedDistribution { values: normalized, total }
    }

    /// Builds from integer values (degrees).
    pub fn from_u64(values: &[u64]) -> Self {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::from_values(&as_f64)
    }

    /// The normalization constant (sum of raw values).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of underlying values (vertices).
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The normalized values, descending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Normalized value at rank `i`, or 0 beyond the support (zero-padding).
    #[inline]
    pub fn at_rank(&self, i: usize) -> f64 {
        self.values.get(i).copied().unwrap_or(0.0)
    }
}

/// The veracity score: mean squared per-rank difference between the two
/// normalized distributions, zero-padded to the longer length.
///
/// Lower is better (0 for identical distributions). Two empty inputs score
/// `f64::NAN`.
///
/// ```
/// use csb_stats::veracity::{average_euclidean_distance, NormalizedDistribution};
///
/// let seed = NormalizedDistribution::from_u64(&[1, 2, 4, 8]);
/// let scaled = NormalizedDistribution::from_u64(&[10, 20, 40, 80]);
/// assert!(average_euclidean_distance(&seed, &scaled) < 1e-15); // scale-free
///
/// let uniform = NormalizedDistribution::from_u64(&[4, 4, 4, 4]);
/// assert!(average_euclidean_distance(&seed, &uniform) > 1e-3); // shape differs
/// ```
pub fn average_euclidean_distance(a: &NormalizedDistribution, b: &NormalizedDistribution) -> f64 {
    let n = a.count().max(b.count());
    if n == 0 {
        return f64::NAN;
    }
    let mut sum_sq = 0.0;
    for i in 0..n {
        let d = a.at_rank(i) - b.at_rank(i);
        sum_sq += d * d;
    }
    sum_sq / n as f64
}

/// Total-variation distance on the rank-aligned distributions:
/// `0.5 * sum_i |a_i - b_i|`, in `[0, 1]`.
pub fn total_variation(a: &NormalizedDistribution, b: &NormalizedDistribution) -> f64 {
    let n = a.count().max(b.count());
    0.5 * (0..n).map(|i| (a.at_rank(i) - b.at_rank(i)).abs()).sum::<f64>()
}

/// Two-sample Kolmogorov-Smirnov statistic on raw value samples:
/// `sup_x |F_a(x) - F_b(x)|`.
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS distance needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    sb.sort_unstable_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        sup = sup.max((fa - fb).abs());
    }
    sup
}

/// Squared maximum mean discrepancy (the biased V-statistic) between two
/// 1-D samples under the RBF kernel `k(x, y) = exp(-(x - y)^2 / (2 σ^2))`:
///
/// `MMD^2 = mean k(a, a) + mean k(b, b) - 2 mean k(a, b)`
///
/// The metric-suite companion of [`ks_distance`]: where KS compares CDFs,
/// MMD embeds both samples in the kernel's feature space and measures the
/// distance of their means — the score the graph-generation literature
/// reports for degree / clustering / spectral distributions. Zero for
/// identical samples (exactly: the three kernel sums run the identical
/// floating-point sequence); always `>= 0` up to rounding. All loops are
/// sequential in sample order, so the result is a pure function of the
/// inputs.
///
/// # Panics
/// Panics if either sample is empty or `sigma` is not finite and positive.
pub fn mmd_rbf(a: &[f64], b: &[f64], sigma: f64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "MMD needs non-empty samples");
    assert!(sigma.is_finite() && sigma > 0.0, "MMD bandwidth must be finite and > 0");
    let inv = 1.0 / (2.0 * sigma * sigma);
    let mean_k = |x: &[f64], y: &[f64]| {
        let mut sum = 0.0;
        for &xi in x {
            for &yj in y {
                let d = xi - yj;
                sum += (-d * d * inv).exp();
            }
        }
        sum / (x.len() as f64 * y.len() as f64)
    };
    mean_k(a, a) + mean_k(b, b) - 2.0 * mean_k(a, b)
}

/// The median heuristic bandwidth for [`mmd_rbf`]: the median absolute
/// difference over all cross pairs `(a_i, b_j)`, falling back to 1 when the
/// median is zero (e.g. both samples constant and equal) so the kernel stays
/// defined. Deterministic: the pair ordering is fixed and ties are resolved
/// by a total sort.
///
/// # Panics
/// Panics if either sample is empty or contains non-finite values.
pub fn median_heuristic_bandwidth(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "bandwidth needs non-empty samples");
    let mut gaps = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            let d = (x - y).abs();
            assert!(d.is_finite(), "non-finite value in bandwidth sample");
            gaps.push(d);
        }
    }
    gaps.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite by validation"));
    let median = gaps[gaps.len() / 2];
    if median > 0.0 {
        median
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_score_zero() {
        let a = NormalizedDistribution::from_u64(&[1, 2, 4, 8, 16]);
        let b = NormalizedDistribution::from_u64(&[1, 2, 4, 8, 16]);
        assert_eq!(average_euclidean_distance(&a, &b), 0.0);
        assert_eq!(total_variation(&a, &b), 0.0);
    }

    #[test]
    fn normalization_is_scale_invariant() {
        let a = NormalizedDistribution::from_u64(&[1, 2, 4, 8]);
        let b = NormalizedDistribution::from_u64(&[10, 20, 40, 80]);
        assert!(average_euclidean_distance(&a, &b) < 1e-15);
    }

    #[test]
    fn order_does_not_matter() {
        let a = NormalizedDistribution::from_u64(&[8, 1, 4, 2]);
        let b = NormalizedDistribution::from_u64(&[1, 2, 4, 8]);
        assert_eq!(average_euclidean_distance(&a, &b), 0.0);
    }

    #[test]
    fn score_decreases_as_synthetic_grows() {
        // The paper's Fig. 6-7 trend: replicating the seed's shape at larger
        // and larger scale drives the score down monotonically.
        let seed: Vec<u64> = vec![1, 1, 1, 2, 2, 4, 8, 30];
        let score_at = |k: usize| {
            let mut big = Vec::new();
            for _ in 0..k {
                big.extend_from_slice(&seed);
            }
            average_euclidean_distance(
                &NormalizedDistribution::from_u64(&seed),
                &NormalizedDistribution::from_u64(&big),
            )
        };
        let s10 = score_at(10);
        let s100 = score_at(100);
        let s1000 = score_at(1000);
        assert!(s10 > s100 && s100 > s1000, "{s10} > {s100} > {s1000} violated");
        // Roughly 1/n decay.
        assert!(s10 / s1000 > 20.0, "decay too shallow: {s10} vs {s1000}");
    }

    #[test]
    fn different_shape_scores_worse_than_replication() {
        let seed: Vec<u64> = vec![1, 1, 1, 2, 2, 4, 8, 30];
        let mut replicated = Vec::new();
        for _ in 0..50 {
            replicated.extend_from_slice(&seed);
        }
        // Same size as the seed but badly different shape: uniform mass.
        let uniform: Vec<u64> = vec![3; seed.len()];
        let a = NormalizedDistribution::from_u64(&seed);
        let good = average_euclidean_distance(&a, &NormalizedDistribution::from_u64(&replicated));
        let bad = average_euclidean_distance(&a, &NormalizedDistribution::from_u64(&uniform));
        assert!(bad > good * 10.0, "bad {bad} should exceed good {good}");
    }

    #[test]
    fn totals_track_paper_normalization() {
        let a = NormalizedDistribution::from_u64(&[3, 5]);
        assert_eq!(a.total(), 8.0);
        assert_eq!(a.count(), 2);
        assert!((a.values().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.values()[0] >= a.values()[1]);
    }

    #[test]
    fn zero_mass_and_empty_inputs() {
        let z = NormalizedDistribution::from_u64(&[0, 0]);
        assert_eq!(z.total(), 0.0);
        let a = NormalizedDistribution::from_u64(&[1]);
        assert!(average_euclidean_distance(&z, &a).is_finite());
        let e = NormalizedDistribution::from_values(&[]);
        assert!(average_euclidean_distance(&e, &e).is_nan());
        assert!(average_euclidean_distance(&e, &a).is_finite());
    }

    #[test]
    fn ks_identical_zero_disjoint_one() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
        let b = [10.0, 20.0, 30.0];
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_half_shifted() {
        let a: Vec<f64> = (0..100).map(f64::from).collect();
        let b: Vec<f64> = (50..150).map(f64::from).collect();
        let d = ks_distance(&a, &b);
        assert!((d - 0.5).abs() < 0.02, "KS {d}");
    }

    #[test]
    fn mmd_identical_samples_score_exactly_zero() {
        let a = [0.0, 1.0, 2.5, 7.0];
        assert_eq!(mmd_rbf(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn mmd_single_points_hand_computed() {
        // n = m = 1: MMD^2 = k(0,0) + k(1,1) - 2 k(0,1)
        //                  = 2 (1 - exp(-1/2)) with sigma = 1.
        let got = mmd_rbf(&[0.0], &[1.0], 1.0);
        let want = 2.0 * (1.0 - (-0.5f64).exp());
        assert!((got - want).abs() < 1e-15, "{got} vs {want}");
    }

    #[test]
    fn mmd_grows_with_separation_and_shrinks_with_bandwidth() {
        let a = [0.0, 0.1, 0.2];
        let near = [0.05, 0.15, 0.25];
        let far = [5.0, 5.1, 5.2];
        assert!(mmd_rbf(&a, &far, 1.0) > mmd_rbf(&a, &near, 1.0));
        // A huge bandwidth washes every gap out.
        assert!(mmd_rbf(&a, &far, 1e6) < 1e-9);
    }

    #[test]
    fn mmd_is_symmetric_and_nonnegative() {
        let a = [1.0, 2.0, 4.0, 8.0];
        let b = [1.5, 3.0, 6.0];
        let ab = mmd_rbf(&a, &b, 2.0);
        let ba = mmd_rbf(&b, &a, 2.0);
        assert!((ab - ba).abs() < 1e-15);
        assert!(ab >= -1e-15);
    }

    #[test]
    fn median_bandwidth_hand_computed() {
        // Cross gaps of [0,2] x [1]: |0-1| = 1, |2-1| = 1 -> median 1.
        assert_eq!(median_heuristic_bandwidth(&[0.0, 2.0], &[1.0]), 1.0);
        // Equal constant samples degenerate to the fallback.
        assert_eq!(median_heuristic_bandwidth(&[3.0], &[3.0]), 1.0);
        // Cross gaps of [0,10] x [1,2]: {1, 2, 9, 8} sorted {1,2,8,9},
        // index 2 -> 8.
        assert_eq!(median_heuristic_bandwidth(&[0.0, 10.0], &[1.0, 2.0]), 8.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn mmd_rejects_empty() {
        let _ = mmd_rbf(&[], &[1.0], 1.0);
    }

    #[test]
    fn tv_bounded_by_one() {
        let a = NormalizedDistribution::from_u64(&[1, 1, 1]);
        let b = NormalizedDistribution::from_u64(&[1_000_000, 2_000_000, 500]);
        let tv = total_variation(&a, &b);
        assert!(tv > 0.0 && tv <= 1.0 + 1e-12);
    }
}
