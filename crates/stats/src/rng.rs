//! Deterministic RNG utilities.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed.
//! This module derives independent child seeds from a master seed with
//! SplitMix64, the recommended seeding generator for xoshiro-family RNGs, so
//! that (a) experiments are reproducible and (b) parallel partitions draw from
//! statistically independent streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator. Used as a seed mixer: successive
/// calls on an incrementing state yield well-distributed, independent seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed for a named/numbered sub-component.
///
/// The `stream` discriminator keeps partitions independent: partition `i` of a
/// distributed job uses `derive_seed(master, i as u64)`.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    // Two rounds so that low-entropy (small-integer) inputs still diffuse.
    let first = splitmix64(&mut s);
    first ^ splitmix64(&mut s)
}

/// Constructs a fast, non-cryptographic RNG from a master seed and a stream id.
#[inline]
pub fn rng_for(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn rng_for_reproducible() {
        let mut r1 = rng_for(99, 3);
        let mut r2 = rng_for(99, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn small_seed_inputs_diffuse() {
        // Consecutive small seeds must not produce correlated outputs in the
        // top bits (a classic failure of naive seeding).
        let a = derive_seed(1, 0);
        let b = derive_seed(2, 0);
        assert_ne!(a >> 32, b >> 32);
    }
}
