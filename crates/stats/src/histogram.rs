//! Linear and logarithmic histograms.
//!
//! Degree and PageRank distributions of scale-free graphs span many orders of
//! magnitude, so the veracity plots (paper Figs. 5-7) use logarithmic binning;
//! attribute distributions (flow sizes, durations) use both.

/// Fixed-width linear histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            // Floating-point rounding can push x/w to nbins; clamp.
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin densities normalized so they sum to 1 over in-range mass.
    pub fn normalized(&self) -> Vec<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c as f64 / in_range as f64).collect()
    }
}

/// Logarithmic histogram: bin `i` covers `[base^i, base^(i+1))`, with bin 0
/// additionally absorbing values in `[0, 1)`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    base: f64,
    bins: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// Creates a log histogram with the given base (> 1).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "log base must exceed 1");
        LogHistogram { base, bins: Vec::new(), count: 0 }
    }

    /// Base-2 log histogram, the binning used by the conditional attribute
    /// distributions (`p(a | IN_BYTES)` buckets IN_BYTES by powers of two).
    pub fn base2() -> Self {
        Self::new(2.0)
    }

    /// Index of the bin holding `x` (non-negative values only).
    pub fn bin_index(&self, x: f64) -> usize {
        assert!(x >= 0.0 && x.is_finite(), "log histogram takes finite non-negative values");
        if x < 1.0 {
            0
        } else {
            (x.ln() / self.base.ln()).floor() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let i = self.bin_index(x);
        if i >= self.bins.len() {
            self.bins.resize(i + 1, 0);
        }
        self.bins[i] += 1;
        self.count += 1;
    }

    /// Raw bin counts (bin `i` covers `[base^i, base^(i+1))`).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.base.powf(i as f64 + 0.5)
    }

    /// Densities normalized to sum to 1.
    pub fn normalized(&self) -> Vec<f64> {
        if self.count == 0 {
            return Vec::new();
        }
        self.bins.iter().map(|&c| c as f64 / self.count as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn linear_bin_center() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn linear_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.9] {
            h.record(x);
        }
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log2_bin_indices() {
        let h = LogHistogram::base2();
        assert_eq!(h.bin_index(0.0), 0);
        assert_eq!(h.bin_index(0.5), 0);
        assert_eq!(h.bin_index(1.0), 0);
        assert_eq!(h.bin_index(2.0), 1);
        assert_eq!(h.bin_index(3.9), 1);
        assert_eq!(h.bin_index(4.0), 2);
        assert_eq!(h.bin_index(1024.0), 10);
    }

    #[test]
    fn log_histogram_records_and_grows() {
        let mut h = LogHistogram::base2();
        for x in [0.0, 1.0, 2.0, 4.0, 4.5, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[2], 2);
        assert_eq!(h.bins()[6], 1); // 100 in [64,128)
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
