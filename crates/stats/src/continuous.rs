//! Continuous samplers used by the traffic simulator.
//!
//! `rand` 0.8 only ships uniform sampling without the `rand_distr` companion
//! crate, so the handful of continuous distributions the trace simulator
//! needs (normal, log-normal, exponential) are implemented here, plus Zipf
//! weights for heavy-tailed host-popularity selection.

use rand::Rng;

/// Gaussian `N(mean, std_dev^2)` sampled with the Box-Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (>= 0).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite(), "normal parameters must be finite");
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; one of the pair is discarded for simplicity.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal: `exp(N(mu, sigma^2))`. Flow sizes and durations in real
/// traffic are approximately log-normal with a power-law tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given *log-space* parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal { normal: Normal::new(mu, sigma) }
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }

    /// Median of the distribution, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.normal.mean.exp()
    }
}

/// Exponential with the given rate `lambda` (inter-arrival times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (> 0); mean is `1/lambda`.
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    /// Panics unless `lambda > 0` and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive and finite");
        Exponential { lambda }
    }

    /// Draws one sample (inverse-CDF).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.lambda
    }
}

/// Zipf weights `w_i = (i+1)^-s` for `i in 0..n`, for heavy-tailed selection
/// via an [`crate::AliasTable`]. Rank 0 is the most popular item.
///
/// # Panics
/// Panics if `n == 0` or `s < 0`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf needs at least one item");
    assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be non-negative");
    (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        let mut rng = SmallRng::seed_from_u64(31);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let s = Summary::of(&samples);
        assert!((s.mean() - 10.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.std_dev() - 3.0).abs() < 0.05, "sd {}", s.std_dev());
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn lognormal_positive_and_median() {
        let d = LogNormal::new(2.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let med = crate::summary::quantile(&mut samples, 0.5);
        assert!((med - d.median()).abs() / d.median() < 0.05, "median {med} vs {}", d.median());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        let mut rng = SmallRng::seed_from_u64(34);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let s = Summary::of(&samples);
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert_eq!(w[0], 1.0);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = zipf_weights(4, 0.0);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
