//! Conditional empirical distributions `p(a | b)` with log2 bucketing of the
//! conditioning variable.
//!
//! The paper's preliminary steps (Fig. 1) compute the unconditional
//! distribution of `IN_BYTES` and, for every other NetFlow attribute `a`, the
//! conditional `p(a | IN_BYTES)`. At generation time an `IN_BYTES` value is
//! drawn first and the remaining attributes are drawn conditioned on it, so a
//! 2-byte flow does not end up with a 3-hour duration.

use crate::empirical::EmpiricalDistribution;
use crate::histogram::LogHistogram;
use rand::Rng;

/// `p(target | bucket(conditioner))`, with the conditioner bucketed in powers
/// of two and a marginal fallback for unseen buckets.
#[derive(Debug, Clone)]
pub struct ConditionalDistribution {
    /// Per-bucket distributions; `None` for buckets with no observations.
    buckets: Vec<Option<EmpiricalDistribution>>,
    /// Marginal distribution over all observations, used as fallback.
    marginal: EmpiricalDistribution,
    binner: LogHistogram,
}

impl ConditionalDistribution {
    /// Builds the conditional distribution from `(conditioner, target)`
    /// observation pairs.
    ///
    /// # Panics
    /// Panics if `pairs` is empty.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let binner = LogHistogram::base2();
        let mut per_bucket: Vec<Vec<u64>> = Vec::new();
        let mut all: Vec<u64> = Vec::new();
        for (cond, target) in pairs {
            let b = binner.bin_index(cond as f64);
            if b >= per_bucket.len() {
                per_bucket.resize_with(b + 1, Vec::new);
            }
            per_bucket[b].push(target);
            all.push(target);
        }
        assert!(!all.is_empty(), "conditional distribution needs observations");
        let marginal = EmpiricalDistribution::from_samples(all);
        let buckets = per_bucket
            .into_iter()
            .map(|samples| {
                if samples.is_empty() {
                    None
                } else {
                    Some(EmpiricalDistribution::from_samples(samples))
                }
            })
            .collect();
        ConditionalDistribution { buckets, marginal, binner }
    }

    /// Samples the target attribute conditioned on the given conditioner
    /// value. Falls back to the marginal when the conditioner lands in a
    /// bucket never observed in the seed.
    pub fn sample_given<R: Rng + ?Sized>(&self, conditioner: u64, rng: &mut R) -> u64 {
        let b = self.binner.bin_index(conditioner as f64);
        match self.buckets.get(b) {
            Some(Some(d)) => d.sample(rng),
            _ => self.marginal.sample(rng),
        }
    }

    /// The marginal (unconditional) distribution of the target.
    pub fn marginal(&self) -> &EmpiricalDistribution {
        &self.marginal
    }

    /// Number of conditioning buckets with observations.
    pub fn populated_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conditions_on_bucket() {
        // conditioner < 2 -> target 10; conditioner in [1024, 2048) -> target 99.
        let pairs = (0..50).map(|_| (1u64, 10u64)).chain((0..50).map(|_| (1500u64, 99u64)));
        let d = ConditionalDistribution::from_pairs(pairs);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample_given(1, &mut rng), 10);
            assert_eq!(d.sample_given(1400, &mut rng), 99);
        }
    }

    #[test]
    fn unseen_bucket_falls_back_to_marginal() {
        let d = ConditionalDistribution::from_pairs([(1u64, 10u64), (1u64, 10u64)]);
        let mut rng = SmallRng::seed_from_u64(6);
        // 1e6 is far beyond any observed bucket.
        assert_eq!(d.sample_given(1_000_000, &mut rng), 10);
    }

    #[test]
    fn populated_bucket_count() {
        let d = ConditionalDistribution::from_pairs([(1u64, 1u64), (1000u64, 2u64)]);
        assert_eq!(d.populated_buckets(), 2);
    }

    #[test]
    fn marginal_mixes_all_targets() {
        let pairs = (0..500).map(|_| (1u64, 0u64)).chain((0..500).map(|_| (4096u64, 1u64)));
        let d = ConditionalDistribution::from_pairs(pairs);
        assert!((d.marginal().pmf(0) - 0.5).abs() < 1e-12);
        assert!((d.marginal().pmf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs observations")]
    fn empty_pairs_panic() {
        let _ = ConditionalDistribution::from_pairs(std::iter::empty());
    }
}
