//! Streaming summaries (Welford moments) and quantiles.
//!
//! Used by the traffic simulator to report trace characteristics, by the IDS
//! threshold trainer (quantile-based thresholds over benign traffic), and by
//! the bench harnesses to report run statistics.

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance (no linear relation is
/// measurable).
///
/// # Panics
/// Panics if lengths differ or the samples are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs equal-length samples");
    assert!(!xs.is_empty(), "pearson of empty samples");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Returns the `q`-quantile (0 <= q <= 1) of the data by linear interpolation
/// on the sorted order statistics.
///
/// # Panics
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &mut [f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    data.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in quantile data"));
    let pos = q * (data.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        let frac = pos - lo as f64;
        data[lo] * (1.0 - frac) + data[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let (a, b) = data.split_at(33);
        let mut left = Summary::of(a);
        let right = Summary::of(b);
        left.merge(&right);
        let whole = Summary::of(&data);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::of(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&mut data, 0.0), 1.0);
        assert_eq!(quantile(&mut data, 1.0), 4.0);
        assert!((quantile(&mut data, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn quantile_empty_panics() {
        let _ = quantile(&mut [], 0.5);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_near_zero() {
        // Deterministic pseudo-independent pair.
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i * 104729) % 997) as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
