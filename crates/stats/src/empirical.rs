//! Empirical discrete distributions over `u64` values.
//!
//! These are the `Distribution` objects in the paper's pseudo-code (Fig. 2
//! line "sample(inDegree)", Fig. 3 line "sample(outDegree)", and the property
//! sampling loops): histograms of observed values in the seed graph that can
//! be re-sampled in O(1).

use crate::alias::AliasTable;
use rand::Rng;
use std::collections::HashMap;

/// A discrete weighted distribution over `u64` values with O(1) sampling.
///
/// ```
/// use csb_stats::EmpiricalDistribution;
/// use csb_stats::rng::rng_for;
///
/// // Observed degrees in a seed graph.
/// let degrees = EmpiricalDistribution::from_samples([1, 1, 1, 2, 2, 7]);
/// assert_eq!(degrees.pmf(1), 0.5);
/// assert_eq!(degrees.max(), 7);
///
/// // Re-sample them for a synthetic graph — only observed values appear.
/// let mut rng = rng_for(42, 0);
/// let v = degrees.sample(&mut rng);
/// assert!([1, 2, 7].contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalDistribution {
    values: Vec<u64>,
    weights: Vec<f64>,
    total_weight: f64,
    table: AliasTable,
}

impl EmpiricalDistribution {
    /// Builds the distribution from `(value, weight)` pairs.
    ///
    /// Pairs with equal values are merged; zero-weight pairs are dropped.
    ///
    /// # Panics
    /// Panics if no pair has positive weight.
    pub fn from_weighted(pairs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut merged: HashMap<u64, f64> = HashMap::new();
        for (v, w) in pairs {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
            if w > 0.0 {
                *merged.entry(v).or_insert(0.0) += w;
            }
        }
        assert!(!merged.is_empty(), "empirical distribution needs positive mass");
        let mut entries: Vec<(u64, f64)> = merged.into_iter().collect();
        entries.sort_unstable_by_key(|&(v, _)| v);
        let values: Vec<u64> = entries.iter().map(|&(v, _)| v).collect();
        let weights: Vec<f64> = entries.iter().map(|&(_, w)| w).collect();
        let total_weight = weights.iter().sum();
        let table = AliasTable::new(&weights);
        EmpiricalDistribution { values, weights, total_weight, table }
    }

    /// Builds the distribution by counting observed samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        Self::from_weighted(samples.into_iter().map(|v| (v, 1.0)))
    }

    /// A distribution that always yields `v` (useful as a degenerate
    /// fallback when a conditional bucket is empty).
    pub fn constant(v: u64) -> Self {
        Self::from_weighted([(v, 1.0)])
    }

    /// Draws one value in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.values[self.table.sample(rng)]
    }

    /// Draws one value by binary-searching the CDF — O(log n). Kept for the
    /// alias-vs-CDF ablation bench; produces the same distribution.
    pub fn sample_cdf<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let target = rng.gen::<f64>() * self.total_weight;
        let mut acc = 0.0;
        for (v, w) in self.values.iter().zip(self.weights.iter()) {
            acc += w;
            if target < acc {
                return *v;
            }
        }
        *self.values.last().expect("non-empty by construction")
    }

    /// Distinct support values, ascending.
    #[inline]
    pub fn support(&self) -> &[u64] {
        &self.values
    }

    /// Weight associated with each support value (same order as
    /// [`Self::support`]).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Probability mass of `v` (0 if outside the support).
    pub fn pmf(&self, v: u64) -> f64 {
        match self.values.binary_search(&v) {
            Ok(i) => self.weights[i] / self.total_weight,
            Err(_) => 0.0,
        }
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.values.iter().zip(self.weights.iter()).map(|(&v, &w)| v as f64 * w).sum::<f64>()
            / self.total_weight
    }

    /// Smallest support value.
    pub fn min(&self) -> u64 {
        self.values[0]
    }

    /// Largest support value.
    pub fn max(&self) -> u64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// Number of distinct support values.
    pub fn support_len(&self) -> usize {
        self.values.len()
    }

    /// Total weight (sample count when built via [`Self::from_samples`]).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_samples_counts_and_merges() {
        let d = EmpiricalDistribution::from_samples([5, 5, 5, 9]);
        assert_eq!(d.support(), &[5, 9]);
        assert!((d.pmf(5) - 0.75).abs() < 1e-12);
        assert!((d.pmf(9) - 0.25).abs() < 1e-12);
        assert_eq!(d.pmf(7), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let d = EmpiricalDistribution::from_weighted([(2, 1.0), (10, 3.0)]);
        assert!((d.mean() - 8.0).abs() < 1e-12);
        assert_eq!(d.min(), 2);
        assert_eq!(d.max(), 10);
    }

    #[test]
    fn constant_always_samples_same() {
        let d = EmpiricalDistribution::constant(77);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..64 {
            assert_eq!(d.sample(&mut rng), 77);
        }
    }

    #[test]
    fn sample_matches_pmf() {
        let d = EmpiricalDistribution::from_weighted([(1, 1.0), (2, 2.0), (3, 7.0)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = HashMap::new();
        let n = 300_000;
        for _ in 0..n {
            *counts.entry(d.sample(&mut rng)).or_insert(0u64) += 1;
        }
        for &v in d.support() {
            let freq = counts[&v] as f64 / n as f64;
            assert!((freq - d.pmf(v)).abs() < 0.01, "value {v}: {freq} vs {}", d.pmf(v));
        }
    }

    #[test]
    fn cdf_sampler_matches_pmf() {
        let d = EmpiricalDistribution::from_weighted([(1, 3.0), (8, 1.0)]);
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 200_000;
        let ones = (0..n).filter(|_| d.sample_cdf(&mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn empty_panics() {
        let _ = EmpiricalDistribution::from_samples(std::iter::empty());
    }

    use std::collections::HashMap;
}
