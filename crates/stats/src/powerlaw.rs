//! Discrete power-law fitting and sampling.
//!
//! The BA model's defining property is a scale-free degree distribution
//! `p(k) ∝ k^-α`. The seed analysis fits `α` from the observed degrees
//! (continuous-approximation MLE, Clauset-Shalizi-Newman eq. 3.1) so the
//! generators can both *characterize* the seed and *verify* that the synthetic
//! graph remains scale-free.

use rand::Rng;

/// A discrete power law `p(k) ∝ k^-α` for `k >= xmin`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Exponent `α > 1`.
    pub alpha: f64,
    /// Lower cutoff of power-law behaviour.
    pub xmin: u64,
}

impl PowerLaw {
    /// Creates a power law with the given exponent and cutoff.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` and `xmin >= 1`.
    pub fn new(alpha: f64, xmin: u64) -> Self {
        assert!(alpha > 1.0, "power-law exponent must exceed 1");
        assert!(xmin >= 1, "xmin must be at least 1");
        PowerLaw { alpha, xmin }
    }

    /// Maximum-likelihood fit of `α` given `xmin`, using the continuous
    /// approximation `α ≈ 1 + n / Σ ln(x_i / (xmin - 1/2))`, which is accurate
    /// for discrete data when `xmin ≳ 6` and adequate for our diagnostics.
    ///
    /// Values below `xmin` are ignored. Returns `None` if fewer than two
    /// observations are at or above `xmin`, or the estimator degenerates.
    pub fn fit(data: impl IntoIterator<Item = u64>, xmin: u64) -> Option<Self> {
        assert!(xmin >= 1, "xmin must be at least 1");
        let shift = xmin as f64 - 0.5;
        let mut n = 0u64;
        let mut log_sum = 0.0;
        for x in data {
            if x >= xmin {
                n += 1;
                log_sum += (x as f64 / shift).ln();
            }
        }
        if n < 2 || log_sum <= 0.0 {
            return None;
        }
        let alpha = 1.0 + n as f64 / log_sum;
        if alpha.is_finite() && alpha > 1.0 {
            Some(PowerLaw { alpha, xmin })
        } else {
            None
        }
    }

    /// Draws a value by the continuous inverse-CDF method rounded to the
    /// nearest integer: `x = xmin * (1-u)^(-1/(α-1))`, a standard and fast
    /// approximation to the discrete zeta sampler.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let x = (self.xmin as f64 - 0.5) * (1.0 - u).powf(-1.0 / (self.alpha - 1.0)) + 0.5;
        // Clamp to avoid returning astronomically large values that overflow
        // u64 in the extreme tail of heavy distributions.
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            (x as u64).max(self.xmin)
        }
    }

    /// Unnormalized density at `k`.
    pub fn density(&self, k: u64) -> f64 {
        if k < self.xmin {
            0.0
        } else {
            (k as f64).powf(-self.alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fit_recovers_planted_exponent() {
        // The continuous-approximation MLE is only accurate for xmin >= ~6
        // (Clauset-Shalizi-Newman), so test in that regime.
        let truth = PowerLaw::new(2.5, 6);
        let mut rng = SmallRng::seed_from_u64(21);
        let samples: Vec<u64> = (0..200_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = PowerLaw::fit(samples, 6).expect("fit should succeed");
        assert!((fitted.alpha - 2.5).abs() < 0.1, "fitted alpha {} too far from 2.5", fitted.alpha);
    }

    #[test]
    fn fit_ignores_values_below_xmin() {
        let truth = PowerLaw::new(3.0, 4);
        let mut rng = SmallRng::seed_from_u64(22);
        let mut samples: Vec<u64> = (0..100_000).map(|_| truth.sample(&mut rng)).collect();
        // Pollute with sub-xmin noise that must not bias the fit.
        samples.extend(std::iter::repeat_n(1, 50_000));
        let fitted = PowerLaw::fit(samples, 4).expect("fit should succeed");
        assert!((fitted.alpha - 3.0).abs() < 0.15, "fitted alpha {}", fitted.alpha);
    }

    #[test]
    fn fit_degenerate_returns_none() {
        assert!(PowerLaw::fit([5u64], 1).is_none());
        // All-identical values at xmin give log_sum > 0 only due to the -0.5
        // shift; ensure no panic either way.
        let _ = PowerLaw::fit([3u64, 3, 3], 3);
        let _ = PowerLaw::fit([1u64, 1, 1], 1);
    }

    #[test]
    fn samples_respect_xmin() {
        let pl = PowerLaw::new(2.0, 7);
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..10_000 {
            assert!(pl.sample(&mut rng) >= 7);
        }
    }

    #[test]
    fn density_zero_below_cutoff() {
        let pl = PowerLaw::new(2.0, 5);
        assert_eq!(pl.density(4), 0.0);
        assert!(pl.density(5) > pl.density(6));
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn invalid_alpha_panics() {
        let _ = PowerLaw::new(1.0, 1);
    }
}
