//! Walker/Vose alias method for O(1) sampling of discrete distributions.
//!
//! Both generators sample edge attributes for *every* generated edge
//! (`O(|E| x |properties|)` in the paper's complexity analysis), so constant
//! time per draw is what keeps property generation from dominating the run.

use rand::Rng;

/// Precomputed alias table over `n` outcomes with the given weights.
///
/// Construction is O(n); each [`AliasTable::sample`] is O(1): one uniform
/// index, one uniform coin.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own outcome (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alternative outcome taken when the coin exceeds `prob[i]`.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        assert!(weights.len() <= u32::MAX as usize, "alias table limited to u32 outcome indices");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Vose's algorithm with two worklists.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Large donor gives away (1 - prob[s]) of its mass.
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1.0 up to floating-point error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an outcome index in `0..len()` in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let freqs = frequencies(&t, 200_000, 3);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f} too far from 1/8");
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = [1.0, 2.0, 4.0, 8.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let freqs = frequencies(&t, 400_000, 4);
        for (f, w) in freqs.iter().zip(weights.iter()) {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "freq {f} vs expected {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
