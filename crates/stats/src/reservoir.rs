//! Reservoir sampling (Vitter's Algorithm L): a uniform fixed-size sample
//! of an unbounded stream in O(k) memory, with geometric skipping so the
//! per-record cost is amortized O(1).
//!
//! Used when analyzing flow streams too large to buffer (seed analysis over
//! multi-hour captures, on-line threshold retraining).

use rand::Rng;

/// A uniform `k`-sample over everything pushed so far.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    items: Vec<T>,
    seen: u64,
    /// Algorithm L state: current acceptance weight.
    w: f64,
    /// Records to skip before the next replacement.
    skip: u64,
}

impl<T> Reservoir<T> {
    /// A reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir needs positive capacity");
        Reservoir { capacity, items: Vec::with_capacity(capacity), seen: 0, w: 1.0, skip: 0 }
    }

    /// Observes one record.
    pub fn push<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            if self.items.len() == self.capacity {
                // Initialize Algorithm L after the fill phase.
                self.advance_w(rng);
                self.schedule_skip(rng);
            }
            return;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        let slot = rng.gen_range(0..self.capacity);
        self.items[slot] = item;
        self.advance_w(rng);
        self.schedule_skip(rng);
    }

    fn advance_w<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.w *= u.powf(1.0 / self.capacity as f64);
    }

    fn schedule_skip<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / (1.0 - self.w).ln()).floor();
        self.skip = if skip.is_finite() && skip >= 0.0 { skip as u64 } else { u64::MAX };
    }

    /// The current sample (order unspecified).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Records observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = Reservoir::new(10);
        let mut rng = rng_for(1, 0);
        for i in 0..5 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.items().len(), 5);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn capacity_is_respected() {
        let mut r = Reservoir::new(16);
        let mut rng = rng_for(2, 0);
        for i in 0..10_000u32 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.items().len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Push 0..1000 into a 100-slot reservoir many times; each value's
        // inclusion frequency should approach 0.1.
        let mut hits = vec![0u32; 1000];
        for trial in 0..400 {
            let mut r = Reservoir::new(100);
            let mut rng = rng_for(3, trial);
            for i in 0..1000usize {
                r.push(i, &mut rng);
            }
            for &i in r.items() {
                hits[i] += 1;
            }
        }
        // Early, middle, and late stream positions all near 40/400 = 10%.
        for probe in [5usize, 500, 995] {
            let freq = hits[probe] as f64 / 400.0;
            assert!((freq - 0.1).abs() < 0.05, "position {probe}: freq {freq}");
        }
        // Aggregate bias check on stream halves.
        let first: u32 = hits[..500].iter().sum();
        let second: u32 = hits[500..].iter().sum();
        let ratio = first as f64 / second as f64;
        assert!((0.85..1.18).contains(&ratio), "half bias {ratio}");
    }

    #[test]
    fn deterministic_given_rng() {
        let run = |seed| {
            let mut r = Reservoir::new(8);
            let mut rng = rng_for(seed, 0);
            for i in 0..500 {
                r.push(i, &mut rng);
            }
            r.into_items()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _: Reservoir<u32> = Reservoir::new(0);
    }
}
