//! Property-based tests of the CSR counting-sort construction: the
//! invariants the streaming kernels lean on (offset monotonicity, multiset
//! equality with the edge list, stability) on arbitrary multigraphs.

use csb_graph::graph::{PropertyGraph, VertexId};
use csb_graph::ooc::SliceScan;
use csb_graph::Csr;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn graph_of(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
    let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|_| g.add_vertex(())).collect();
    for &(s, d) in edges {
        g.add_edge(vs[(s % n) as usize], vs[(d % n) as usize], ());
    }
    g
}

fn multiset(pairs: impl IntoIterator<Item = (u32, u32)>) -> BTreeMap<(u32, u32), usize> {
    let mut m = BTreeMap::new();
    for p in pairs {
        *m.entry(p).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Offsets are monotone, start at 0, end at the edge count, and have
    /// exactly `n + 1` entries — in both orientations.
    #[test]
    fn offsets_are_monotone(
        n in 1u32..64,
        edges in prop::collection::vec((any::<u32>(), any::<u32>()), 0..500),
    ) {
        let g = graph_of(n, &edges);
        for csr in [Csr::out_of(&g), Csr::in_of(&g)] {
            let off = csr.offsets();
            prop_assert_eq!(off.len(), n as usize + 1);
            prop_assert_eq!(off[0], 0);
            prop_assert_eq!(*off.last().expect("non-empty"), edges.len());
            prop_assert!(off.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// The (vertex, neighbor) multiset of the CSR equals the edge-list
    /// multiset: every parallel edge is preserved, none invented.
    #[test]
    fn neighbor_multiset_equals_edge_list(
        n in 1u32..64,
        edges in prop::collection::vec((any::<u32>(), any::<u32>()), 0..500),
    ) {
        let g = graph_of(n, &edges);
        let reduced: Vec<(u32, u32)> =
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect();

        let out = Csr::out_of(&g);
        let out_pairs = (0..n).flat_map(|v| {
            out.neighbors(VertexId(v)).iter().map(move |&t| (v, t)).collect::<Vec<_>>()
        });
        prop_assert_eq!(multiset(out_pairs), multiset(reduced.iter().copied()));

        let inn = Csr::in_of(&g);
        let in_pairs = (0..n).flat_map(|v| {
            inn.neighbors(VertexId(v)).iter().map(move |&s| (s, v)).collect::<Vec<_>>()
        });
        prop_assert_eq!(multiset(in_pairs), multiset(reduced.iter().copied()));
    }

    /// The counting sort is stable: each vertex's neighbors appear in edge
    /// insertion order, which is the order the streaming scatter replays.
    #[test]
    fn neighbor_order_is_edge_insertion_order(
        n in 1u32..32,
        edges in prop::collection::vec((any::<u32>(), any::<u32>()), 0..300),
    ) {
        let g = graph_of(n, &edges);
        let out = Csr::out_of(&g);
        for v in 0..n {
            let expected: Vec<u32> = edges
                .iter()
                .filter(|&&(s, _)| s % n == v)
                .map(|&(_, d)| d % n)
                .collect();
            prop_assert_eq!(out.neighbors(VertexId(v)), expected.as_slice());
        }
    }

    /// The external two-pass build over a batched stream reproduces the
    /// in-memory build exactly, for any batch width.
    #[test]
    fn external_build_matches_in_memory(
        n in 1u32..64,
        edges in prop::collection::vec((any::<u32>(), any::<u32>()), 0..500),
        batch in 1usize..80,
    ) {
        let g = graph_of(n, &edges);
        let src: Vec<u32> = edges.iter().map(|&(s, _)| s % n).collect();
        let dst: Vec<u32> = edges.iter().map(|&(_, d)| d % n).collect();
        let scan = || SliceScan::new(n as usize, &src, &dst).with_batch(batch);
        let out = Csr::out_of_scan(&mut scan()).expect("infallible");
        prop_assert_eq!(&out, &Csr::out_of(&g));
        let inn = Csr::in_of_scan(&mut scan()).expect("infallible");
        prop_assert_eq!(&inn, &Csr::in_of(&g));
    }
}
