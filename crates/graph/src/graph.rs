//! The directed property multigraph `G = (V, E, Dv, De)`.
//!
//! Storage is a struct-of-arrays edge list (sources, targets, edge data in
//! parallel vectors) — the same flat representation the paper's Spark/GraphX
//! implementation keeps in its edge RDD, and the representation PGPBA's
//! two-stage preferential attachment samples from.

/// Index of a vertex in the graph. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Index of an edge in the multi-set `E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl VertexId {
    /// The underlying index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed multigraph with vertex data `V` and edge data `E`.
///
/// ```
/// use csb_graph::PropertyGraph;
///
/// let mut g: PropertyGraph<&str, u32> = PropertyGraph::new();
/// let a = g.add_vertex("10.0.0.1");
/// let b = g.add_vertex("10.0.0.2");
/// g.add_edge(a, b, 443);
/// g.add_edge(a, b, 443); // parallel edges are first-class
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.out_degrees(), vec![2, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PropertyGraph<V, E> {
    vertex_data: Vec<V>,
    src: Vec<VertexId>,
    dst: Vec<VertexId>,
    edge_data: Vec<E>,
}

impl<V, E> PropertyGraph<V, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PropertyGraph {
            vertex_data: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            edge_data: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        PropertyGraph {
            vertex_data: Vec::with_capacity(vertices),
            src: Vec::with_capacity(edges),
            dst: Vec::with_capacity(edges),
            edge_data: Vec::with_capacity(edges),
        }
    }

    /// Builds a graph directly from its column arrays, validating once in
    /// bulk instead of per-call — the allocation-lean path the generators use
    /// to materialize millions of edges (`attach_properties` feeds buffers
    /// produced by parallel prefix-sum writes straight into this).
    ///
    /// # Panics
    /// Panics if the edge arrays disagree in length, the vertex count
    /// exceeds `u32`, or any endpoint is out of range.
    pub fn from_parts(
        vertex_data: Vec<V>,
        src: Vec<VertexId>,
        dst: Vec<VertexId>,
        edge_data: Vec<E>,
    ) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), edge_data.len(), "edge data length mismatch");
        let n = vertex_data.len();
        assert!(u32::try_from(n).is_ok(), "vertex count exceeds u32");
        let in_range = |col: &[VertexId]| col.iter().all(|v| v.index() < n);
        assert!(in_range(&src), "edge source out of range");
        assert!(in_range(&dst), "edge target out of range");
        PropertyGraph { vertex_data, src, dst, edge_data }
    }

    /// Adds a vertex carrying `data` and returns its id.
    pub fn add_vertex(&mut self, data: V) -> VertexId {
        let id = VertexId(u32::try_from(self.vertex_data.len()).expect("vertex count exceeds u32"));
        self.vertex_data.push(data);
        id
    }

    /// Adds a directed edge `src -> dst` carrying `data`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, data: E) -> EdgeId {
        assert!(src.index() < self.vertex_data.len(), "edge source out of range");
        assert!(dst.index() < self.vertex_data.len(), "edge target out of range");
        let id = EdgeId(self.src.len());
        self.src.push(src);
        self.dst.push(dst);
        self.edge_data.push(data);
        id
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_data.len()
    }

    /// Number of edges `|E|` (multi-edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Vertex data of `v`.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &V {
        &self.vertex_data[v.index()]
    }

    /// Mutable vertex data of `v`.
    #[inline]
    pub fn vertex_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.vertex_data[v.index()]
    }

    /// Endpoints of edge `e` as `(src, dst)`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (self.src[e.0], self.dst[e.0])
    }

    /// Edge data of `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &E {
        &self.edge_data[e.0]
    }

    /// Mutable edge data of `e`.
    #[inline]
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edge_data[e.0]
    }

    /// Iterates vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_data.len() as u32).map(VertexId)
    }

    /// Iterates `(EdgeId, src, dst, &data)` over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId, &E)> + '_ {
        (0..self.src.len()).map(move |i| (EdgeId(i), self.src[i], self.dst[i], &self.edge_data[i]))
    }

    /// Raw edge source array (for kernels and samplers).
    #[inline]
    pub fn edge_sources(&self) -> &[VertexId] {
        &self.src
    }

    /// Raw edge target array.
    #[inline]
    pub fn edge_targets(&self) -> &[VertexId] {
        &self.dst
    }

    /// Raw edge data array.
    #[inline]
    pub fn edge_data(&self) -> &[E] {
        &self.edge_data
    }

    /// Raw vertex data array.
    #[inline]
    pub fn vertex_data(&self) -> &[V] {
        &self.vertex_data
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.vertex_count()];
        for s in &self.src {
            d[s.index()] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.vertex_count()];
        for t in &self.dst {
            d[t.index()] += 1;
        }
        d
    }

    /// Maps edge data, keeping topology (used to strip attributes for the
    /// Kronecker pre-pass).
    pub fn map_edges<F, E2>(&self, mut f: F) -> PropertyGraph<V, E2>
    where
        V: Clone,
        F: FnMut(&E) -> E2,
    {
        PropertyGraph {
            vertex_data: self.vertex_data.clone(),
            src: self.src.clone(),
            dst: self.dst.clone(),
            edge_data: self.edge_data.iter().map(&mut f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> PropertyGraph<&'static str, u32> {
        // a -> b, a -> c, b -> d, c -> d, plus a parallel a -> b.
        let mut g = PropertyGraph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        let d = g.add_vertex("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2); // multi-edge
        g.add_edge(a, c, 3);
        g.add_edge(b, d, 4);
        g.add_edge(c, d, 5);
        g
    }

    #[test]
    fn counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(*g.vertex(VertexId(2)), "c");
        assert_eq!(g.endpoints(EdgeId(0)), (VertexId(0), VertexId(1)));
        assert_eq!(*g.edge(EdgeId(4)), 5);
    }

    #[test]
    fn multi_edges_are_distinct() {
        let g = diamond();
        let parallel: Vec<_> =
            g.edges().filter(|&(_, s, t, _)| s == VertexId(0) && t == VertexId(1)).collect();
        assert_eq!(parallel.len(), 2);
        assert_ne!(parallel[0].3, parallel[1].3);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![3, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 2, 1, 2]);
    }

    #[test]
    fn mutation() {
        let mut g = diamond();
        *g.vertex_mut(VertexId(0)) = "z";
        *g.edge_mut(EdgeId(0)) = 99;
        assert_eq!(*g.vertex(VertexId(0)), "z");
        assert_eq!(*g.edge(EdgeId(0)), 99);
    }

    #[test]
    fn map_edges_keeps_topology() {
        let g = diamond();
        let h = g.map_edges(|&w| w as u64 * 10);
        assert_eq!(h.vertex_count(), g.vertex_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(*h.edge(EdgeId(1)), 20u64);
        assert_eq!(h.endpoints(EdgeId(1)), g.endpoints(EdgeId(1)));
    }

    #[test]
    fn from_parts_round_trips() {
        let g = diamond();
        let h: PropertyGraph<&str, u32> = PropertyGraph::from_parts(
            g.vertex_data().to_vec(),
            g.edge_sources().to_vec(),
            g.edge_targets().to_vec(),
            g.edge_data().to_vec(),
        );
        assert_eq!(h.vertex_count(), g.vertex_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for (a, b) in g.edges().zip(h.edges()) {
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
            assert_eq!(a.3, b.3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_dangling_edges() {
        let _ = PropertyGraph::from_parts(
            vec![(), ()],
            vec![VertexId(0)],
            vec![VertexId(7)],
            vec![1u8],
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_ragged_columns() {
        let _ = PropertyGraph::from_parts(vec![()], vec![VertexId(0)], vec![], vec![1u8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_panics() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v = g.add_vertex(());
        g.add_edge(v, VertexId(7), ());
    }

    #[test]
    fn empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
