//! Text serialization of NetFlow property-graphs.
//!
//! A simple line-oriented format (one vertex or edge per line, tab-separated)
//! so generated datasets can be exported for external graph platforms and
//! reloaded — the role the paper's released suite plays as the dataset
//! component of an IDS benchmark.
//!
//! ```text
//! # csb-graph v1
//! v <id> <ip>
//! e <src> <dst> <proto> <sport> <dport> <dur_ms> <out_b> <in_b> <out_p> <in_p> <state>
//! ```

use crate::graph::VertexId;
use crate::properties::EdgeProperties;
use crate::NetflowGraph;
use csb_net::flow::{Protocol, TcpConnState};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

const HEADER: &str = "# csb-graph v1";

/// Errors from graph (de)serialization.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the input text.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph I/O error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "graph parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Writes the graph in the text format.
///
/// The writer is buffered internally (one `writeln!` per vertex/edge would
/// otherwise issue one syscall per line on a raw `File`), so callers can
/// pass an unbuffered writer directly.
pub fn write_graph<W: Write>(w: W, g: &NetflowGraph) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{HEADER}")?;
    for v in g.vertices() {
        writeln!(w, "v\t{}\t{}", v.0, g.vertex(v))?;
    }
    for (_, s, d, p) in g.edges() {
        writeln!(
            w,
            "e\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.0,
            d.0,
            p.protocol.number(),
            p.src_port,
            p.dst_port,
            p.duration_ms,
            p.out_bytes,
            p.in_bytes,
            p.out_pkts,
            p.in_pkts,
            p.state.code()
        )?;
    }
    w.flush()?;
    Ok(())
}

fn parse_err(line: usize, message: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse { line, message: message.into() }
}

/// Reads a graph written by [`write_graph`]. Vertex lines must appear in id
/// order and precede edges referencing them.
pub fn read_graph<R: Read>(r: R) -> Result<NetflowGraph, GraphIoError> {
    let reader = BufReader::new(r);
    let mut g = NetflowGraph::new();
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if first?.trim() != HEADER {
        return Err(parse_err(1, "missing csb-graph header"));
    }
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        match fields.next() {
            Some("v") => {
                let id: u32 = next_field(&mut fields, lineno, "vertex id")?;
                let ip: u32 = next_field(&mut fields, lineno, "vertex ip")?;
                let assigned = g.add_vertex(ip);
                if assigned.0 != id {
                    return Err(parse_err(lineno, format!("vertex id {id} out of order")));
                }
            }
            Some("e") => {
                let s: u32 = next_field(&mut fields, lineno, "edge src")?;
                let d: u32 = next_field(&mut fields, lineno, "edge dst")?;
                let proto_num: u8 = next_field(&mut fields, lineno, "protocol")?;
                let protocol = Protocol::from_number(proto_num)
                    .ok_or_else(|| parse_err(lineno, format!("bad protocol {proto_num}")))?;
                let src_port: u16 = next_field(&mut fields, lineno, "src port")?;
                let dst_port: u16 = next_field(&mut fields, lineno, "dst port")?;
                let duration_ms: u64 = next_field(&mut fields, lineno, "duration")?;
                let out_bytes: u64 = next_field(&mut fields, lineno, "out bytes")?;
                let in_bytes: u64 = next_field(&mut fields, lineno, "in bytes")?;
                let out_pkts: u64 = next_field(&mut fields, lineno, "out pkts")?;
                let in_pkts: u64 = next_field(&mut fields, lineno, "in pkts")?;
                let state_code: u64 = next_field(&mut fields, lineno, "state")?;
                let state = TcpConnState::from_code(state_code)
                    .ok_or_else(|| parse_err(lineno, format!("bad state {state_code}")))?;
                if s as usize >= g.vertex_count() || d as usize >= g.vertex_count() {
                    return Err(parse_err(lineno, "edge references unknown vertex"));
                }
                g.add_edge(
                    VertexId(s),
                    VertexId(d),
                    EdgeProperties {
                        protocol,
                        src_port,
                        dst_port,
                        duration_ms,
                        out_bytes,
                        in_bytes,
                        out_pkts,
                        in_pkts,
                        state,
                    },
                );
            }
            other => {
                return Err(parse_err(lineno, format!("unknown record kind {other:?}")));
            }
        }
    }
    Ok(g)
}

fn next_field<'a, T: std::str::FromStr>(
    fields: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, GraphIoError> {
    let raw = fields.next().ok_or_else(|| parse_err(lineno, format!("missing {what}")))?;
    raw.parse().map_err(|_| parse_err(lineno, format!("bad {what}: {raw:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_flows::graph_from_flows;
    use csb_net::flow::FlowRecord;

    fn sample_graph() -> NetflowGraph {
        let mk =
            |src: u32, dst: u32, dport: u16, proto: Protocol, state: TcpConnState| FlowRecord {
                src_ip: src,
                dst_ip: dst,
                protocol: proto,
                src_port: 41000,
                dst_port: dport,
                duration_ms: 77,
                out_bytes: 123,
                in_bytes: 4567,
                out_pkts: 3,
                in_pkts: 5,
                state,
                syn_count: 1,
                ack_count: 4,
                first_ts_micros: 0,
            };
        graph_from_flows(&[
            mk(0x0A000001, 0x0A000002, 80, Protocol::Tcp, TcpConnState::Sf),
            mk(0x0A000001, 0x0A000003, 53, Protocol::Udp, TcpConnState::Oth),
            mk(0x0A000002, 0x0A000003, 22, Protocol::Tcp, TcpConnState::Rej),
        ])
    }

    #[test]
    fn round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).expect("write");
        let h = read_graph(&buf[..]).expect("read");
        assert_eq!(h.vertex_count(), g.vertex_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for (ge, he) in g.edges().zip(h.edges()) {
            assert_eq!(ge.1, he.1);
            assert_eq!(ge.2, he.2);
            assert_eq!(ge.3, he.3);
        }
        for v in g.vertices() {
            assert_eq!(g.vertex(v), h.vertex(v));
        }
    }

    #[test]
    fn large_graph_round_trips_through_a_file() {
        // Regression for unbuffered writes: 100k+ edges through a real File
        // (one syscall per line without the internal BufWriter) and back.
        let n_vertices = 1000u32;
        let n_edges = 120_000usize;
        let mut g = NetflowGraph::with_capacity(n_vertices as usize, n_edges);
        for i in 0..n_vertices {
            g.add_vertex(0x0A00_0000 + i);
        }
        for i in 0..n_edges {
            let s = (i as u32 * 7) % n_vertices;
            let d = (i as u32 * 13 + 1) % n_vertices;
            g.add_edge(
                VertexId(s),
                VertexId(d),
                EdgeProperties {
                    protocol: Protocol::Tcp,
                    src_port: (i % 60_000) as u16,
                    dst_port: 443,
                    duration_ms: i as u64,
                    out_bytes: i as u64 * 3,
                    in_bytes: i as u64 * 5,
                    out_pkts: 2,
                    in_pkts: 4,
                    state: TcpConnState::Sf,
                },
            );
        }
        let path = std::env::temp_dir().join(format!("csb-io-large-{}.graph", std::process::id()));
        write_graph(std::fs::File::create(&path).expect("create"), &g).expect("write");
        let h = read_graph(std::fs::File::open(&path).expect("open")).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(h.vertex_count(), g.vertex_count());
        assert_eq!(h.edge_count(), n_edges);
        assert_eq!(g.vertex_data(), h.vertex_data());
        assert_eq!(g.edge_sources(), h.edge_sources());
        assert_eq!(g.edge_targets(), h.edge_targets());
        assert_eq!(g.edge_data(), h.edge_data());
    }

    #[test]
    fn missing_header_rejected() {
        assert!(read_graph(&b"v\t0\t1\n"[..]).is_err());
        assert!(read_graph(&b""[..]).is_err());
    }

    #[test]
    fn dangling_edge_rejected() {
        let text = format!("{HEADER}\nv\t0\t1\ne\t0\t5\t6\t1\t2\t3\t4\t5\t6\t7\t2\n");
        let err = read_graph(text.as_bytes()).expect_err("must fail");
        assert!(err.to_string().contains("unknown vertex"), "{err}");
    }

    #[test]
    fn bad_protocol_rejected() {
        let text = format!("{HEADER}\nv\t0\t1\nv\t1\t2\ne\t0\t1\t99\t1\t2\t3\t4\t5\t6\t7\t2\n");
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{HEADER}\n\n# comment\nv\t0\t1\n");
        let g = read_graph(text.as_bytes()).expect("read");
        assert_eq!(g.vertex_count(), 1);
    }
}
