//! Compressed sparse row adjacency index.
//!
//! The flat edge list is ideal for PGPBA's edge sampling but poor for
//! traversal; kernels (PageRank, BFS, Brandes) build a [`Csr`] first:
//! `offsets[v]..offsets[v+1]` indexes `targets` with `v`'s out-neighbors.

use crate::graph::{PropertyGraph, VertexId};
use crate::ooc::EdgeScan;

/// CSR adjacency over `n` vertices. Multi-edges are preserved (a neighbor
/// appears once per parallel edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds the *out*-adjacency of the graph.
    pub fn out_of<V, E>(g: &PropertyGraph<V, E>) -> Self {
        Self::build(g.vertex_count(), g.edge_sources(), g.edge_targets())
    }

    /// Builds the *in*-adjacency (reverse edges) of the graph.
    pub fn in_of<V, E>(g: &PropertyGraph<V, E>) -> Self {
        Self::build(g.vertex_count(), g.edge_targets(), g.edge_sources())
    }

    /// Builds the *out*-adjacency from a streamed edge list (e.g. a
    /// `csb-store` file), never holding both endpoint arrays in memory.
    ///
    /// Two-pass external counting sort: pass 1 streams only the sources and
    /// counts per-vertex degrees (`ooc.pass1` span); the prefix sum turns the
    /// counts into offsets; pass 2 streams full edges and drops each target
    /// into its cursor slot (`ooc.pass2` span). Because the cursor placement
    /// consumes edges in stream order, the neighbor order per vertex is
    /// identical to [`Csr::out_of`] on the materialized graph whenever the
    /// stream replays the graph's edge order — the in-memory build is the
    /// same stable counting sort. Scratch beyond the output CSR itself is
    /// one `usize` cursor array (O(vertices)) plus the scan's batch buffers.
    pub fn out_of_scan<S: EdgeScan>(scan: &mut S) -> Result<Self, S::Error> {
        Self::from_scan(scan, false)
    }

    /// Builds the *in*-adjacency (reverse edges) from a streamed edge list;
    /// see [`Csr::out_of_scan`].
    pub fn in_of_scan<S: EdgeScan>(scan: &mut S) -> Result<Self, S::Error> {
        Self::from_scan(scan, true)
    }

    fn from_scan<S: EdgeScan>(scan: &mut S, reverse: bool) -> Result<Self, S::Error> {
        let n = scan.vertex_count()?;
        let mut offsets = vec![0usize; n + 1];
        {
            let _span = csb_obs::span_cat("ooc.pass1", "ooc");
            let count = &mut |keys: &[u32]| {
                for &k in keys {
                    offsets[k as usize + 1] += 1;
                }
            };
            if reverse {
                scan.scan_targets(count)?;
            } else {
                scan.scan_sources(count)?;
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; *offsets.last().unwrap_or(&0)];
        {
            let _span = csb_obs::span_cat("ooc.pass2", "ooc");
            scan.scan_edges(&mut |src, dst| {
                let (from, to) = if reverse { (dst, src) } else { (src, dst) };
                for (&f, &t) in from.iter().zip(to) {
                    let slot = cursor[f as usize];
                    targets[slot] = t;
                    cursor[f as usize] += 1;
                }
            })?;
        }
        crate::ooc::note_peak_scratch(
            8 * (n as u64 + 1) // cursor array; offsets+targets are the output
                + scan.scratch_bytes(),
        );
        Ok(Csr { offsets, targets })
    }

    /// Counting-sort construction from parallel `from`/`to` arrays.
    fn build(n: usize, from: &[VertexId], to: &[VertexId]) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for f in from {
            offsets[f.index() + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; from.len()];
        for (f, t) in from.iter().zip(to.iter()) {
            let slot = cursor[f.index()];
            targets[slot] = t.0;
            cursor[f.index()] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v` (with multiplicity).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Degree of `v` in this orientation.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The offsets array (length `n+1`, monotone, ends at `edge_count`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated neighbor array indexed by [`Csr::offsets`].
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        let v: Vec<VertexId> = (0..4).map(|_| g.add_vertex(())).collect();
        g.add_edge(v[0], v[1], ());
        g.add_edge(v[0], v[2], ());
        g.add_edge(v[0], v[1], ()); // parallel
        g.add_edge(v[2], v[3], ());
        g.add_edge(v[3], v[0], ());
        g
    }

    #[test]
    fn out_adjacency() {
        let g = sample();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.vertex_count(), 4);
        assert_eq!(csr.edge_count(), 5);
        let mut n0 = csr.neighbors(VertexId(0)).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 1, 2]);
        assert_eq!(csr.degree(VertexId(1)), 0);
        assert_eq!(csr.neighbors(VertexId(3)), &[0]);
    }

    #[test]
    fn in_adjacency_is_reverse() {
        let g = sample();
        let csr = Csr::in_of(&g);
        let mut n1 = csr.neighbors(VertexId(1)).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 0]);
        assert_eq!(csr.neighbors(VertexId(0)), &[3]);
    }

    #[test]
    fn offsets_invariants() {
        let g = sample();
        let csr = Csr::out_of(&g);
        let off = csr.offsets();
        assert_eq!(off.len(), g.vertex_count() + 1);
        assert_eq!(off[0], 0);
        assert_eq!(*off.last().expect("non-empty"), g.edge_count());
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degrees_match_graph() {
        let g = sample();
        let out = Csr::out_of(&g);
        let ind = Csr::in_of(&g);
        let od = g.out_degrees();
        let id = g.in_degrees();
        for v in g.vertices() {
            assert_eq!(out.degree(v) as u64, od[v.index()]);
            assert_eq!(ind.degree(v) as u64, id[v.index()]);
        }
    }

    #[test]
    fn empty_graph_csr() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
