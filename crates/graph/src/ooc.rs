//! Out-of-core analytics: kernels that consume a *streamed* edge list
//! instead of a materialized [`PropertyGraph`](crate::graph::PropertyGraph).
//!
//! The paper's Section V evaluates veracity (degree and PageRank
//! distribution distance) on multi-million-edge graphs; once generation
//! streams straight into chunked store files, the evaluation side must be
//! bounded-memory too. The [`EdgeScan`] trait abstracts "a graph I can
//! re-scan in a fixed record order": `csb-store`'s reader implements it by
//! projecting the `SRC`/`DST` columns chunk by chunk, and [`SliceScan`] /
//! [`GraphScan`] provide the in-memory reference used by the differential
//! conformance suite.
//!
//! **Correctness contract.** Every kernel here is *bit-for-bit* equal to its
//! in-memory counterpart on the same logical graph, for any batching of the
//! same record stream:
//!
//! * contributions to a vertex accumulate in stream order, exactly the order
//!   the stable counting-sort CSR ([`Csr::in_of`]) yields them;
//! * scalar reductions reuse the deterministic blocked sums of
//!   [`pagerank`](crate::algo::pagerank) ([`SUM_BLOCK`]-wide chunks,
//!   partials combined sequentially), so the result does not depend on the
//!   rayon thread count;
//! * the parallel scatter partitions the *destination* range into blocks —
//!   each destination slot is written by exactly one block, preserving its
//!   per-slot accumulation order for any block width.
//!
//! Scratch memory is O(vertices + batch): the rank/degree vectors plus
//! whatever the scan buffers per batch. Each kernel reports its footprint
//! through the `ooc.peak_scratch_bytes` gauge and wraps its passes in
//! `ooc.pass1` (counting/degree) and `ooc.pass2` (placement/power-iteration)
//! spans.
//!
//! [`SUM_BLOCK`]: crate::algo::pagerank
//! [`Csr::in_of`]: crate::csr::Csr::in_of

use crate::algo::degree::DegreeDistributions;
use crate::algo::pagerank::{dangling_mass, l1_delta, PageRankConfig};
use crate::graph::PropertyGraph;
use csb_stats::EmpiricalDistribution;
use rayon::prelude::*;
use std::convert::Infallible;

/// A graph served as a re-scannable stream of `(src, dst)` edge batches.
///
/// Implementations must replay the *same* record stream on every scan (the
/// PageRank kernel re-scans once per power iteration); batch boundaries are
/// arbitrary and carry no meaning.
pub trait EdgeScan {
    /// Scan failure (I/O, corruption). [`Infallible`] for in-memory scans.
    type Error;

    /// Number of vertices in the logical graph. Edge endpoints are ids in
    /// `0..vertex_count()`.
    fn vertex_count(&mut self) -> Result<usize, Self::Error>;

    /// Number of edges in the logical graph.
    fn edge_count(&mut self) -> Result<u64, Self::Error>;

    /// Streams every edge, in stream order, as `(src, dst)` batches.
    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), Self::Error>;

    /// Streams only the sources. A columnar store overrides this with a
    /// single-column projection; the default reads both endpoints.
    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), Self::Error> {
        self.scan_edges(&mut |src, _| f(src))
    }

    /// Streams only the targets; see [`EdgeScan::scan_sources`].
    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), Self::Error> {
        self.scan_edges(&mut |_, dst| f(dst))
    }

    /// Upper bound on the bytes this scan buffers per batch, counted into
    /// the kernels' `ooc.peak_scratch_bytes` gauge. Zero for borrowed
    /// in-memory scans.
    fn scratch_bytes(&self) -> u64 {
        0
    }
}

/// In-memory [`EdgeScan`] over borrowed endpoint slices, re-batched at a
/// configurable width — the conformance suite's tool for proving kernels are
/// batching-invariant.
#[derive(Debug, Clone)]
pub struct SliceScan<'a> {
    n: usize,
    src: &'a [u32],
    dst: &'a [u32],
    batch: usize,
}

impl<'a> SliceScan<'a> {
    /// A scan over `n` vertices and the parallel `src`/`dst` edge arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(n: usize, src: &'a [u32], dst: &'a [u32]) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        SliceScan { n, src, dst, batch: usize::MAX }
    }

    /// Overrides the batch width (default: one batch for the whole stream).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl EdgeScan for SliceScan<'_> {
    type Error = Infallible;

    fn vertex_count(&mut self) -> Result<usize, Infallible> {
        Ok(self.n)
    }

    fn edge_count(&mut self) -> Result<u64, Infallible> {
        Ok(self.src.len() as u64)
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), Infallible> {
        let batch = self.batch.min(self.src.len().max(1));
        for (s, d) in self.src.chunks(batch).zip(self.dst.chunks(batch)) {
            f(s, d);
        }
        Ok(())
    }
}

/// Owned [`EdgeScan`] snapshot of a [`PropertyGraph`]'s topology — the
/// in-memory side of the differential suite.
#[derive(Debug, Clone)]
pub struct GraphScan {
    n: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
    batch: usize,
}

impl GraphScan {
    /// Snapshots the topology of `g`.
    pub fn of<V, E>(g: &PropertyGraph<V, E>) -> Self {
        GraphScan {
            n: g.vertex_count(),
            src: g.edge_sources().iter().map(|v| v.0).collect(),
            dst: g.edge_targets().iter().map(|v| v.0).collect(),
            batch: usize::MAX,
        }
    }

    /// Overrides the batch width (default: one batch for the whole stream).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl EdgeScan for GraphScan {
    type Error = Infallible;

    fn vertex_count(&mut self) -> Result<usize, Infallible> {
        Ok(self.n)
    }

    fn edge_count(&mut self) -> Result<u64, Infallible> {
        Ok(self.src.len() as u64)
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), Infallible> {
        SliceScan::new(self.n, &self.src, &self.dst).with_batch(self.batch).scan_edges(f)
    }
}

/// Per-vertex in- and out-degree counts from one streaming pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeCounts {
    /// In-degree of each vertex; equals `PropertyGraph::in_degrees`.
    pub in_deg: Vec<u64>,
    /// Out-degree of each vertex; equals `PropertyGraph::out_degrees`.
    pub out_deg: Vec<u64>,
}

impl DegreeCounts {
    /// Total (in + out) degree per vertex — the degree-veracity input.
    pub fn total(&self) -> Vec<u64> {
        self.in_deg.iter().zip(self.out_deg.iter()).map(|(a, b)| a + b).collect()
    }
}

/// Counts every vertex's in- and out-degree in a single edge scan.
pub fn degree_counts_ooc<S: EdgeScan>(scan: &mut S) -> Result<DegreeCounts, S::Error> {
    let _span = csb_obs::span_cat("ooc.pass1", "ooc");
    let n = scan.vertex_count()?;
    let mut in_deg = vec![0u64; n];
    let mut out_deg = vec![0u64; n];
    scan.scan_edges(&mut |src, dst| {
        for &s in src {
            out_deg[s as usize] += 1;
        }
        for &d in dst {
            in_deg[d as usize] += 1;
        }
    })?;
    note_peak_scratch(16 * n as u64 + scan.scratch_bytes());
    Ok(DegreeCounts { in_deg, out_deg })
}

/// Out-of-core [`degree_distribution`](crate::algo::degree_distribution):
/// identical distributions, O(vertices + batch) scratch.
///
/// # Panics
/// Panics on an empty graph, like the in-memory version.
pub fn degree_distribution_ooc<S: EdgeScan>(scan: &mut S) -> Result<DegreeDistributions, S::Error> {
    let counts = degree_counts_ooc(scan)?;
    assert!(!counts.in_deg.is_empty(), "degree distribution of empty graph");
    Ok(DegreeDistributions {
        in_degree: EmpiricalDistribution::from_samples(counts.in_deg),
        out_degree: EmpiricalDistribution::from_samples(counts.out_deg),
    })
}

/// Out-of-core [`pagerank`](crate::algo::pagerank::pagerank): bit-identical
/// ranks without ever materializing an adjacency index.
///
/// Re-scans the edge stream once per power iteration, scattering
/// `rank[src] / out_degree[src]` into the next-rank vector. Because the
/// scatter visits edges in stream order and the stable counting-sort CSR
/// lists each vertex's in-neighbors in that same order, every per-vertex
/// accumulation performs the identical floating-point operation sequence as
/// the in-memory pull gather. Scratch: three O(vertices) vectors plus the
/// scan's batch buffers.
pub fn pagerank_ooc<S: EdgeScan>(scan: &mut S, cfg: &PageRankConfig) -> Result<Vec<f64>, S::Error> {
    let n = scan.vertex_count()?;
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut out_deg = vec![0u64; n];
    {
        let _span = csb_obs::span_cat("ooc.pass1", "ooc");
        scan.scan_sources(&mut |src| {
            for &s in src {
                out_deg[s as usize] += 1;
            }
        })?;
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    note_peak_scratch(24 * n as u64 + scan.scratch_bytes());
    for _ in 0..cfg.max_iters {
        let dangling = dangling_mass(&rank, &out_deg);
        let base = (1.0 - cfg.damping) * inv_n + cfg.damping * dangling * inv_n;
        next.fill(0.0);
        {
            let _span = csb_obs::span_cat("ooc.pass2", "ooc");
            let (rank_ref, deg_ref) = (&rank, &out_deg);
            scan.scan_edges(&mut |src, dst| scatter_batch(&mut next, rank_ref, deg_ref, src, dst))?;
        }
        next.par_iter_mut().for_each(|slot| *slot = base + cfg.damping * *slot);
        let delta = l1_delta(&rank, &next);
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    Ok(rank)
}

/// Below this vertex count the destination-blocked parallel scatter cannot
/// pay for its redundant batch reads; scatter sequentially instead. Shared
/// with the spectral sketch's symmetric scatter.
pub(crate) const SCATTER_MIN_VERTICES: usize = 1 << 14;

/// Accumulates one batch of contributions into `next`.
///
/// The parallel path partitions the destination range into equal blocks;
/// every block re-reads the whole batch but only writes destinations it
/// owns, so each slot's accumulation order — and therefore every bit of the
/// result — is independent of the block width and thread count.
fn scatter_batch(next: &mut [f64], rank: &[f64], out_deg: &[u64], src: &[u32], dst: &[u32]) {
    let n = next.len();
    let threads = rayon::current_num_threads();
    if threads <= 1 || n < SCATTER_MIN_VERTICES {
        for (&s, &d) in src.iter().zip(dst) {
            next[d as usize] += rank[s as usize] / out_deg[s as usize] as f64;
        }
        return;
    }
    let block = n.div_ceil(2 * threads).max(1);
    next.par_chunks_mut(block).enumerate().for_each(|(bi, slots)| {
        let lo = bi * block;
        let hi = lo + slots.len();
        for (&s, &d) in src.iter().zip(dst) {
            let d = d as usize;
            if (lo..hi).contains(&d) {
                slots[d - lo] += rank[s as usize] / out_deg[s as usize] as f64;
            }
        }
    });
}

/// Raises the `ooc.peak_scratch_bytes` gauge to `bytes` if it is below —
/// the bound the veracity bench asserts stays O(vertices + chunk).
pub(crate) fn note_peak_scratch(bytes: u64) {
    if !csb_obs::enabled() {
        return;
    }
    let gauge = csb_obs::metrics::gauge("ooc.peak_scratch_bytes");
    if gauge.get() < bytes as i64 {
        gauge.set(bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::degree_distribution;
    use crate::algo::pagerank::{pagerank, pagerank_sequential};
    use crate::graph::PropertyGraph;
    use rand::{Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize, e: usize) -> PropertyGraph<(), ()> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..n).map(|_| g.add_vertex(())).collect();
        for _ in 0..e {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            g.add_edge(v[s], v[t], ());
        }
        g
    }

    #[test]
    fn graph_scan_counts_match_graph() {
        let g = random_graph(3, 50, 300);
        let mut scan = GraphScan::of(&g).with_batch(7);
        assert_eq!(scan.vertex_count().unwrap(), 50);
        assert_eq!(scan.edge_count().unwrap(), 300);
        let counts = degree_counts_ooc(&mut scan).unwrap();
        assert_eq!(counts.in_deg, g.in_degrees());
        assert_eq!(counts.out_deg, g.out_degrees());
    }

    #[test]
    fn pagerank_ooc_is_bit_identical_to_in_memory() {
        let g = random_graph(11, 120, 700);
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        for batch in [1usize, 3, 64, 1024, usize::MAX] {
            let ooc = pagerank_ooc(&mut GraphScan::of(&g).with_batch(batch), &cfg).unwrap();
            assert_eq!(mem.len(), ooc.len());
            for (a, b) in mem.iter().zip(ooc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pagerank_ooc_close_to_sequential_reference() {
        let g = random_graph(5, 80, 400);
        let cfg = PageRankConfig::default();
        let seq = pagerank_sequential(&g, &cfg);
        let ooc = pagerank_ooc(&mut GraphScan::of(&g), &cfg).unwrap();
        for (a, b) in seq.iter().zip(ooc.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn degree_distribution_ooc_matches_in_memory() {
        let g = random_graph(17, 40, 200);
        let mem = degree_distribution(&g);
        let ooc = degree_distribution_ooc(&mut GraphScan::of(&g).with_batch(13)).unwrap();
        assert_eq!(mem.in_degree.support(), ooc.in_degree.support());
        assert_eq!(mem.in_degree.weights(), ooc.in_degree.weights());
        assert_eq!(mem.out_degree.support(), ooc.out_degree.support());
        assert_eq!(mem.out_degree.weights(), ooc.out_degree.weights());
    }

    #[test]
    fn empty_graph_pagerank_ooc_is_empty() {
        let mut scan = SliceScan::new(0, &[], &[]);
        assert!(pagerank_ooc(&mut scan, &PageRankConfig::default()).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_degree_distribution_ooc_panics() {
        let mut scan = SliceScan::new(0, &[], &[]);
        let _ = degree_distribution_ooc(&mut scan);
    }

    #[test]
    fn dangling_and_disconnected_vertices_agree() {
        // Star into dangling leaves plus isolated vertices.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        for _ in 0..5 {
            let leaf = g.add_vertex(());
            g.add_edge(hub, leaf, ());
        }
        for _ in 0..3 {
            g.add_vertex(());
        }
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        let ooc = pagerank_ooc(&mut GraphScan::of(&g).with_batch(2), &cfg).unwrap();
        for (a, b) in mem.iter().zip(ooc.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
