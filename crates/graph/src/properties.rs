//! The `De` edge-attribute set of paper Section III: the nine NetFlow
//! attributes attached to every edge of a [`crate::NetflowGraph`].

use csb_net::flow::{FlowRecord, Protocol, TcpConnState};

/// NetFlow edge attributes (paper Section III's `De` list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeProperties {
    /// PROTOCOL: transport protocol of the stream.
    pub protocol: Protocol,
    /// SRC_PORT: source port.
    pub src_port: u16,
    /// DEST_PORT: destination port.
    pub dst_port: u16,
    /// DURATION in milliseconds.
    pub duration_ms: u64,
    /// OUT_BYTES: source-to-destination bytes.
    pub out_bytes: u64,
    /// IN_BYTES: destination-to-source bytes.
    pub in_bytes: u64,
    /// OUT_PKTS: source-to-destination packets.
    pub out_pkts: u64,
    /// IN_PKTS: destination-to-source packets.
    pub in_pkts: u64,
    /// STATE: TCP connection state (OTH for UDP).
    pub state: TcpConnState,
}

impl EdgeProperties {
    /// Extracts the attributes from a NetFlow record.
    pub fn from_flow(f: &FlowRecord) -> Self {
        EdgeProperties {
            protocol: f.protocol,
            src_port: f.src_port,
            dst_port: f.dst_port,
            duration_ms: f.duration_ms,
            out_bytes: f.out_bytes,
            in_bytes: f.in_bytes,
            out_pkts: f.out_pkts,
            in_pkts: f.in_pkts,
            state: f.state,
        }
    }

    /// A neutral default used when properties are generated afterwards
    /// (the generators first build topology, then fill attributes — paper
    /// Fig. 2 lines 15-20 and Fig. 3 lines 13-18).
    pub fn placeholder() -> Self {
        EdgeProperties {
            protocol: Protocol::Tcp,
            src_port: 0,
            dst_port: 0,
            duration_ms: 0,
            out_bytes: 0,
            in_bytes: 0,
            out_pkts: 0,
            in_pkts: 0,
            state: TcpConnState::Oth,
        }
    }

    /// The attribute names, in the paper's order, for reports.
    pub const ATTRIBUTE_NAMES: [&'static str; 9] = [
        "PROTOCOL",
        "SRC_PORT",
        "DEST_PORT",
        "DURATION",
        "OUT_BYTES",
        "IN_BYTES",
        "OUT_PKTS",
        "IN_PKTS",
        "STATE",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flow_copies_every_attribute() {
        let f = FlowRecord {
            src_ip: 1,
            dst_ip: 2,
            protocol: Protocol::Udp,
            src_port: 5353,
            dst_port: 53,
            duration_ms: 12,
            out_bytes: 60,
            in_bytes: 300,
            out_pkts: 1,
            in_pkts: 1,
            state: TcpConnState::Oth,
            syn_count: 0,
            ack_count: 0,
            first_ts_micros: 0,
        };
        let p = EdgeProperties::from_flow(&f);
        assert_eq!(p.protocol, Protocol::Udp);
        assert_eq!(p.src_port, 5353);
        assert_eq!(p.dst_port, 53);
        assert_eq!(p.duration_ms, 12);
        assert_eq!(p.out_bytes, 60);
        assert_eq!(p.in_bytes, 300);
        assert_eq!(p.out_pkts, 1);
        assert_eq!(p.in_pkts, 1);
        assert_eq!(p.state, TcpConnState::Oth);
    }

    #[test]
    fn nine_attributes_as_in_the_paper() {
        assert_eq!(EdgeProperties::ATTRIBUTE_NAMES.len(), 9);
    }

    #[test]
    fn placeholder_is_zeroed() {
        let p = EdgeProperties::placeholder();
        assert_eq!(p.out_bytes, 0);
        assert_eq!(p.in_bytes, 0);
        assert_eq!(p.state, TcpConnState::Oth);
    }
}
