//! GraphX-style edge partitioning strategies.
//!
//! The paper's implementation partitions the edge RDD across executors; the
//! strategy determines load balance and the vertex *replication factor*
//! (how many partitions each vertex's state must be mirrored to), which
//! drives shuffle volume. The three classic GraphX strategies are
//! implemented plus the balance/replication metrics to compare them — used
//! by the `partition_ablation` Criterion bench.

use crate::graph::{PropertyGraph, VertexId};

/// Edge partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Hash of the (src, dst) pair: balanced, high replication.
    RandomVertexCut,
    /// Hash of the source only: co-locates a vertex's out-edges, replication
    /// bounded by in-edges.
    EdgePartition1D,
    /// Grid strategy: vertices map to a sqrt(P) x sqrt(P) grid; an edge goes
    /// to cell (row(src), col(dst)). Replication per vertex is bounded by
    /// `2 sqrt(P) - 1`.
    EdgePartition2D,
}

#[inline]
fn mix(x: u64) -> u64 {
    // splitmix-style finalizer.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PartitionStrategy {
    /// Partition of one edge.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn partition_of(&self, src: VertexId, dst: VertexId, num_partitions: usize) -> usize {
        assert!(num_partitions > 0, "need at least one partition");
        let p = num_partitions as u64;
        match self {
            PartitionStrategy::RandomVertexCut => {
                (mix(((src.0 as u64) << 32) | dst.0 as u64) % p) as usize
            }
            PartitionStrategy::EdgePartition1D => (mix(src.0 as u64) % p) as usize,
            PartitionStrategy::EdgePartition2D => {
                let side = (p as f64).sqrt().ceil() as u64;
                let row = mix(src.0 as u64) % side;
                let col = mix(dst.0 as u64) % side;
                ((row * side + col) % p) as usize
            }
        }
    }

    /// Assigns every edge of a graph; returns per-edge partition ids.
    pub fn assign<V, E>(&self, g: &PropertyGraph<V, E>, num_partitions: usize) -> Vec<usize> {
        g.edge_sources()
            .iter()
            .zip(g.edge_targets().iter())
            .map(|(&s, &d)| self.partition_of(s, d, num_partitions))
            .collect()
    }
}

/// Quality metrics of one partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// Largest partition size divided by the mean (1.0 = perfectly even).
    pub balance: f64,
    /// Mean number of partitions each (non-isolated) vertex appears in.
    pub replication_factor: f64,
}

/// Measures balance and replication of an assignment.
///
/// # Panics
/// Panics if assignment length differs from the edge count.
pub fn partition_quality<V, E>(
    g: &PropertyGraph<V, E>,
    assignment: &[usize],
    num_partitions: usize,
) -> PartitionQuality {
    assert_eq!(assignment.len(), g.edge_count(), "assignment/edge mismatch");
    let mut sizes = vec![0u64; num_partitions];
    for &a in assignment {
        sizes[a] += 1;
    }
    let mean = g.edge_count() as f64 / num_partitions as f64;
    let balance =
        if mean == 0.0 { 1.0 } else { *sizes.iter().max().expect("non-empty") as f64 / mean };

    // Replication: distinct partitions per vertex.
    let mut seen: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); g.vertex_count()];
    for ((&s, &d), &a) in
        g.edge_sources().iter().zip(g.edge_targets().iter()).zip(assignment.iter())
    {
        seen[s.index()].insert(a);
        seen[d.index()].insert(a);
    }
    let active: Vec<usize> = seen.iter().map(|s| s.len()).filter(|&n| n > 0).collect();
    let replication_factor = if active.is_empty() {
        0.0
    } else {
        active.iter().sum::<usize>() as f64 / active.len() as f64
    };
    PartitionQuality { balance, replication_factor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_stats::rng::rng_for;
    use rand::Rng;

    fn random_graph(n: u32, m: usize) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        let mut rng = rng_for(42, 0);
        for _ in 0..m {
            let s = VertexId(rng.gen_range(0..n));
            let d = VertexId(rng.gen_range(0..n));
            g.add_edge(s, d, ());
        }
        g
    }

    #[test]
    fn assignments_in_range_and_deterministic() {
        let g = random_graph(500, 5_000);
        for strategy in [
            PartitionStrategy::RandomVertexCut,
            PartitionStrategy::EdgePartition1D,
            PartitionStrategy::EdgePartition2D,
        ] {
            let a = strategy.assign(&g, 16);
            assert_eq!(a.len(), 5_000);
            assert!(a.iter().all(|&p| p < 16));
            assert_eq!(a, strategy.assign(&g, 16));
        }
    }

    #[test]
    fn random_vertex_cut_is_balanced() {
        let g = random_graph(500, 20_000);
        let a = PartitionStrategy::RandomVertexCut.assign(&g, 16);
        let q = partition_quality(&g, &a, 16);
        assert!(q.balance < 1.2, "balance {}", q.balance);
    }

    #[test]
    fn one_d_colocates_out_edges() {
        // A single source vertex: 1D puts all its edges in one partition.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        for _ in 0..100 {
            let v = g.add_vertex(());
            g.add_edge(hub, v, ());
        }
        let a = PartitionStrategy::EdgePartition1D.assign(&g, 8);
        assert!(a.windows(2).all(|w| w[0] == w[1]), "1D must co-locate a source's edges");
        // Vertex-cut spreads the same edges widely.
        let rvc = PartitionStrategy::RandomVertexCut.assign(&g, 8);
        let distinct: std::collections::HashSet<_> = rvc.iter().collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn two_d_bounds_replication() {
        let g = random_graph(300, 30_000);
        let p = 16usize; // side = 4, bound = 2*4 - 1 = 7
        let a2d = PartitionStrategy::EdgePartition2D.assign(&g, p);
        let q2d = partition_quality(&g, &a2d, p);
        let side = (p as f64).sqrt().ceil();
        assert!(
            q2d.replication_factor <= 2.0 * side - 1.0 + 1e-9,
            "2D replication {} exceeds bound",
            q2d.replication_factor
        );
        // Dense graph: vertex-cut replicates more than 2D.
        let arvc = PartitionStrategy::RandomVertexCut.assign(&g, p);
        let qrvc = partition_quality(&g, &arvc, p);
        assert!(
            qrvc.replication_factor > q2d.replication_factor,
            "RVC {} should exceed 2D {}",
            qrvc.replication_factor,
            q2d.replication_factor
        );
    }

    #[test]
    fn quality_on_empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let q = partition_quality(&g, &[], 4);
        assert_eq!(q.replication_factor, 0.0);
        assert_eq!(q.balance, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panic() {
        PartitionStrategy::RandomVertexCut.partition_of(VertexId(0), VertexId(1), 0);
    }
}
