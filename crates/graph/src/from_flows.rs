//! NetFlow -> property-graph mapping (paper Fig. 1, "Netflow to
//! property-graph"): hosts become vertices, flows become edges.

use crate::graph::VertexId;
use crate::properties::EdgeProperties;
use crate::NetflowGraph;
use csb_net::flow::FlowRecord;
use std::collections::HashMap;

/// Builds the property-graph of a flow set. Vertices carry the host IPv4
/// address (the paper's `Dv` is just an ID; we keep the address so flows can
/// be traced back); every flow becomes one directed edge originator ->
/// responder carrying the nine NetFlow attributes.
pub fn graph_from_flows(flows: &[FlowRecord]) -> NetflowGraph {
    let mut g = NetflowGraph::with_capacity(flows.len() / 4 + 1, flows.len());
    let mut by_ip: HashMap<u32, VertexId> = HashMap::new();
    for f in flows {
        let s = *by_ip.entry(f.src_ip).or_insert_with(|| g.add_vertex(f.src_ip));
        let d = *by_ip.entry(f.dst_ip).or_insert_with(|| g.add_vertex(f.dst_ip));
        g.add_edge(s, d, EdgeProperties::from_flow(f));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::flow::{Protocol, TcpConnState};

    fn flow(src: u32, dst: u32, dport: u16) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40000,
            dst_port: dport,
            duration_ms: 1,
            out_bytes: 10,
            in_bytes: 20,
            out_pkts: 1,
            in_pkts: 1,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 1,
            first_ts_micros: 0,
        }
    }

    #[test]
    fn hosts_become_unique_vertices() {
        let flows = vec![flow(1, 2, 80), flow(1, 3, 443), flow(2, 3, 22)];
        let g = graph_from_flows(&flows);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn repeated_connections_become_multi_edges() {
        let flows = vec![flow(1, 2, 80), flow(1, 2, 80), flow(1, 2, 8080)];
        let g = graph_from_flows(&flows);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_attributes_preserved() {
        let g = graph_from_flows(&[flow(9, 8, 25)]);
        let (_, s, d, props) = g.edges().next().expect("one edge");
        assert_eq!(*g.vertex(s), 9);
        assert_eq!(*g.vertex(d), 8);
        assert_eq!(props.dst_port, 25);
        assert_eq!(props.in_bytes, 20);
    }

    #[test]
    fn empty_flows_empty_graph() {
        let g = graph_from_flows(&[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
