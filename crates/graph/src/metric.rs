//! The pluggable veracity metric suite: one trait, seven concrete metrics.
//!
//! A [`GraphMetric`] turns a graph into a *score vector* — per-vertex
//! degrees or PageRank mass, the clustering coefficient pair, Newman's
//! assortativity, a spectral sketch — and knows how to collapse a seed and
//! a synthetic score vector into one scalar distance (lower = higher
//! veracity). Every metric has two computation paths under the PR 5
//! differential-conformance contract:
//!
//! * [`GraphMetric::compute`] on a materialized [`PropertyGraph`], and
//! * [`GraphMetric::compute_scan`] on any [`EdgeScan`] stream,
//!
//! which are **bit-for-bit identical** on the same logical graph for any
//! batching and any rayon thread count. `csb-core`'s `VeracityJob` drives
//! this trait; the root `ooc_conformance` suite proves the contract per
//! metric with differential proptests.

use crate::algo::assortativity::{degree_assortativity, degree_assortativity_ooc};
use crate::algo::clustering::{clustering_coefficients, clustering_coefficients_ooc};
use crate::algo::pagerank::{pagerank, PageRankConfig};
use crate::algo::spectral::{spectral_sketch, spectral_sketch_ooc, SpectralConfig};
use crate::graph::PropertyGraph;
use crate::ooc::{degree_counts_ooc, pagerank_ooc, EdgeScan};
use csb_stats::veracity::{
    average_euclidean_distance, median_heuristic_bandwidth, mmd_rbf, NormalizedDistribution,
};

/// One veracity metric: a score vector per graph plus a distance collapsing
/// a seed/synthetic vector pair into the reported scalar.
pub trait GraphMetric {
    /// Stable metric name, used for report keys and CLI selection.
    fn name(&self) -> &'static str;

    /// Score vector from a materialized graph.
    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64>;

    /// Score vector from a streamed edge list — bit-for-bit identical to
    /// [`GraphMetric::compute`] on the same logical graph.
    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error>;

    /// Collapses the two score vectors into the reported distance (lower is
    /// better; zero for identical vectors).
    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64;
}

/// Total (in + out) degree of every vertex, as f64 score values.
fn total_degrees_f64<V, E>(g: &PropertyGraph<V, E>) -> Vec<f64> {
    g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| (a + b) as f64).collect()
}

/// The paper's distribution distance: normalize per-vertex values by their
/// own sum, rank-align descending, mean squared per-rank difference.
fn distribution_distance(seed: &[f64], synth: &[f64]) -> f64 {
    average_euclidean_distance(
        &NormalizedDistribution::from_values(seed),
        &NormalizedDistribution::from_values(synth),
    )
}

/// Mean absolute difference of two short score vectors, zero-padded to the
/// longer length. Zero when both are empty.
fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|i| (a.get(i).copied().unwrap_or(0.0) - b.get(i).copied().unwrap_or(0.0)).abs())
        .sum::<f64>()
        / n as f64
}

/// Sample-size cap of the MMD metrics: above this many values, each sample
/// is reduced to this many evenly spaced ranks of its descending sort —
/// deterministic (no RNG), shape-preserving, and it bounds the O(n^2)
/// kernel sums.
pub const MMD_MAX_SAMPLES: usize = 512;

fn mmd_sample(values: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite metric values"));
    if sorted.len() <= MMD_MAX_SAMPLES {
        return sorted;
    }
    let last = sorted.len() - 1;
    (0..MMD_MAX_SAMPLES).map(|i| sorted[i * last / (MMD_MAX_SAMPLES - 1)]).collect()
}

/// RBF-kernel MMD^2 between two score samples, bandwidth from the median
/// heuristic on the (subsampled) inputs. NaN when exactly one side is empty.
fn mmd_distance(seed: &[f64], synth: &[f64]) -> f64 {
    if seed.is_empty() && synth.is_empty() {
        return 0.0;
    }
    if seed.is_empty() || synth.is_empty() {
        return f64::NAN;
    }
    let a = mmd_sample(seed);
    let b = mmd_sample(synth);
    mmd_rbf(&a, &b, median_heuristic_bandwidth(&a, &b))
}

/// Degree-distribution veracity (paper Fig. 6): per-vertex total degrees,
/// compared with the paper's normalized-distribution distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeMetric;

impl GraphMetric for DegreeMetric {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        total_degrees_f64(g)
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        Ok(degree_counts_ooc(scan)?.total().iter().map(|&d| d as f64).collect())
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        distribution_distance(seed, synth)
    }
}

/// PageRank-distribution veracity (paper Fig. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct PagerankMetric {
    /// Power-iteration parameters.
    pub cfg: PageRankConfig,
}

impl GraphMetric for PagerankMetric {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        pagerank(g, &self.cfg)
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        pagerank_ooc(scan, &self.cfg)
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        distribution_distance(seed, synth)
    }
}

/// Clustering veracity: the `[global, average local]` coefficient pair,
/// compared by mean absolute difference (both coefficients live in [0, 1]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusteringMetric;

impl GraphMetric for ClusteringMetric {
    fn name(&self) -> &'static str {
        "clustering"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        let c = clustering_coefficients(g);
        vec![c.global, c.average_local]
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        let c = clustering_coefficients_ooc(scan)?;
        Ok(vec![c.global, c.average_local])
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        mean_abs_diff(seed, synth)
    }
}

/// Degree-assortativity veracity: Newman's r as a one-element vector,
/// compared by absolute difference (r lives in [-1, 1]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AssortativityMetric;

impl GraphMetric for AssortativityMetric {
    fn name(&self) -> &'static str {
        "assortativity"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        vec![degree_assortativity(g)]
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        Ok(vec![degree_assortativity_ooc(scan)?])
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        mean_abs_diff(seed, synth)
    }
}

/// Spectral veracity: the top normalized-Laplacian eigenvalues (a
/// fixed-length histogram sketch of the spectrum, each value in [0, 2]),
/// compared by mean absolute difference.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralMetric {
    /// Sketch parameters (eigenvalue count, iterations, start seed).
    pub cfg: SpectralConfig,
}

impl GraphMetric for SpectralMetric {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        spectral_sketch(g, &self.cfg)
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        spectral_sketch_ooc(scan, &self.cfg)
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        mean_abs_diff(seed, synth)
    }
}

/// MMD over the degree samples: the kernel-embedding distance the
/// graph-generation literature reports, on raw per-vertex total degrees
/// (already size-comparable: mean degree is scale-free).
#[derive(Debug, Clone, Copy, Default)]
pub struct MmdDegreeMetric;

impl GraphMetric for MmdDegreeMetric {
    fn name(&self) -> &'static str {
        "mmd_degree"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        total_degrees_f64(g)
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        DegreeMetric.compute_scan(scan)
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        mmd_distance(seed, synth)
    }
}

/// MMD over the PageRank mass, rescaled by the vertex count so the mean is
/// 1 regardless of graph size (raw PageRank sums to 1, which would turn any
/// size difference into pure support shift).
#[derive(Debug, Clone, Copy, Default)]
pub struct MmdPagerankMetric {
    /// Power-iteration parameters.
    pub cfg: PageRankConfig,
}

impl MmdPagerankMetric {
    /// The size normalization: multiply each vertex's rank by the vertex
    /// count. Exposed so callers holding a raw PageRank vector can reuse it
    /// without recomputing the ranks.
    pub fn scaled(ranks: &[f64]) -> Vec<f64> {
        let n = ranks.len() as f64;
        ranks.iter().map(|&r| r * n).collect()
    }
}

impl GraphMetric for MmdPagerankMetric {
    fn name(&self) -> &'static str {
        "mmd_pagerank"
    }

    fn compute<V, E>(&self, g: &PropertyGraph<V, E>) -> Vec<f64> {
        Self::scaled(&pagerank(g, &self.cfg))
    }

    fn compute_scan<S: EdgeScan>(&self, scan: &mut S) -> Result<Vec<f64>, S::Error> {
        Ok(Self::scaled(&pagerank_ooc(scan, &self.cfg)?))
    }

    fn distance(&self, seed: &[f64], synth: &[f64]) -> f64 {
        mmd_distance(seed, synth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PropertyGraph, VertexId};
    use crate::ooc::GraphScan;

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    fn check_conformance<M: GraphMetric>(metric: &M, g: &PropertyGraph<(), ()>) {
        let mem = metric.compute(g);
        for batch in [1usize, 3, usize::MAX] {
            let ooc = metric.compute_scan(&mut GraphScan::of(g).with_batch(batch)).unwrap();
            assert_eq!(mem.len(), ooc.len(), "{} batch {batch}", metric.name());
            for (a, b) in mem.iter().zip(ooc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} batch {batch}", metric.name());
            }
        }
        assert_eq!(metric.distance(&mem, &mem), 0.0, "{} self-distance", metric.name());
    }

    #[test]
    fn every_metric_conforms_and_self_scores_zero() {
        let edges: Vec<(u32, u32)> =
            (0..60u32).map(|i| (i % 11, (i * 7 + 2) % 11)).chain([(0, 0)]).collect();
        let g = graph(12, &edges);
        check_conformance(&DegreeMetric, &g);
        check_conformance(&PagerankMetric::default(), &g);
        check_conformance(&ClusteringMetric, &g);
        check_conformance(&AssortativityMetric, &g);
        check_conformance(&SpectralMetric::default(), &g);
        check_conformance(&MmdDegreeMetric, &g);
        check_conformance(&MmdPagerankMetric::default(), &g);
    }

    #[test]
    fn degree_metric_matches_paper_definition() {
        let a = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 0)]);
        let m = DegreeMetric;
        let want = average_euclidean_distance(
            &NormalizedDistribution::from_u64(&[2, 2, 2, 2]),
            &NormalizedDistribution::from_u64(&[4, 2, 1, 1]),
        );
        let got = m.distance(&m.compute(&a), &m.compute(&b));
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn mmd_subsample_is_deterministic_and_bounded() {
        let values: Vec<f64> = (0..5000).map(|i| (i % 97) as f64).collect();
        let s1 = mmd_sample(&values);
        let s2 = mmd_sample(&values);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), MMD_MAX_SAMPLES);
        // Descending and spanning the full range.
        assert_eq!(s1[0], 96.0);
        assert_eq!(*s1.last().unwrap(), 0.0);
    }

    #[test]
    fn mmd_pagerank_scaling_is_size_free() {
        // Two uniform rank vectors of different sizes scale to the same
        // constant-1 sample.
        let small = MmdPagerankMetric::scaled(&[0.25; 4]);
        let large = MmdPagerankMetric::scaled(&[0.125; 8]);
        assert!(small.iter().all(|&v| (v - 1.0).abs() < 1e-15));
        assert!(large.iter().all(|&v| (v - 1.0).abs() < 1e-15));
        assert!(mmd_distance(&small, &large).abs() < 1e-12);
    }

    #[test]
    fn distances_separate_unlike_graphs() {
        let ring: Vec<(u32, u32)> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
        let star: Vec<(u32, u32)> = (1..30u32).map(|i| (0, i)).collect();
        let a = graph(30, &ring);
        let b = graph(30, &star);
        let m = MmdDegreeMetric;
        let d = m.distance(&m.compute(&a), &m.compute(&b));
        assert!(d > 1e-3, "MMD {d} too small to separate ring from star");
        // Assortativity: a path (r = -1 exactly) against the ring (r = 0).
        let c = graph(3, &[(0, 1), (1, 2)]);
        let m = AssortativityMetric;
        let d = m.distance(&m.compute(&a), &m.compute(&c));
        assert!((d - 1.0).abs() < 1e-12, "assortativity distance {d}");
    }
}
