//! Approximate betweenness centrality (Brandes' algorithm over sampled
//! sources), another structural property the paper lists for future
//! generation methods. Sampling keeps it usable on the large synthetic
//! graphs; with `samples >= |V|` it is exact Brandes.

use crate::csr::Csr;
use crate::graph::{PropertyGraph, VertexId};
use csb_stats::rng::rng_for;
use rand::seq::SliceRandom;
use std::collections::VecDeque;

/// Betweenness estimated from `samples` random source vertices, scaled to
/// extrapolate to the full sum (multiply per-source contributions by
/// `|V| / samples`). Directed, unweighted shortest paths.
pub fn approximate_betweenness<V, E>(
    g: &PropertyGraph<V, E>,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    let n = g.vertex_count();
    let mut bc = vec![0.0f64; n];
    if n == 0 || samples == 0 {
        return bc;
    }
    let csr = Csr::out_of(g);
    let mut sources: Vec<u32> = (0..n as u32).collect();
    let mut rng = rng_for(seed, 0xBC);
    sources.shuffle(&mut rng);
    let picked = &sources[..samples.min(n)];
    let scale = n as f64 / picked.len() as f64;

    // Brandes' accumulation, one BFS per source.
    let mut dist = vec![-1i64; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];

    for &s in picked {
        dist.iter_mut().for_each(|d| *d = -1);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        preds.iter_mut().for_each(Vec::clear);
        order.clear();

        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &w in csr.neighbors(VertexId(u)) {
                let wu = w as usize;
                if dist[wu] < 0 {
                    dist[wu] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
                if dist[wu] == dist[u as usize] + 1 {
                    sigma[wu] += sigma[u as usize];
                    preds[wu].push(u);
                }
            }
        }
        for &w in order.iter().rev() {
            let wu = w as usize;
            for &p in &preds[wu] {
                let pu = p as usize;
                delta[pu] += sigma[pu] / sigma[wu] * (1.0 + delta[wu]);
            }
            if w != s {
                bc[wu] += delta[wu] * scale;
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path a -> b -> c: all shortest paths through b.
    #[test]
    fn path_center_has_all_betweenness() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let a = g.add_vertex(());
        let b = g.add_vertex(());
        let c = g.add_vertex(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let bc = approximate_betweenness(&g, 3, 0); // exact: all sources
        assert!((bc[a.index()] - 0.0).abs() < 1e-12);
        assert!((bc[b.index()] - 1.0).abs() < 1e-12);
        assert!((bc[c.index()] - 0.0).abs() < 1e-12);
    }

    /// Star: hub sits on every leaf-to-leaf path.
    #[test]
    fn star_hub_dominates() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        let leaves: Vec<_> = (0..5).map(|_| g.add_vertex(())).collect();
        for &l in &leaves {
            g.add_edge(hub, l, ());
            g.add_edge(l, hub, ());
        }
        let bc = approximate_betweenness(&g, 6, 0);
        // Hub: 5*4 = 20 ordered leaf pairs, each with exactly one shortest
        // path through the hub.
        assert!((bc[0] - 20.0).abs() < 1e-9, "hub bc {}", bc[0]);
        for &l in &leaves {
            assert!(bc[l.index()].abs() < 1e-9);
        }
    }

    /// Two parallel two-hop routes split path counts evenly.
    #[test]
    fn split_shortest_paths() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let s = g.add_vertex(());
        let m1 = g.add_vertex(());
        let m2 = g.add_vertex(());
        let t = g.add_vertex(());
        g.add_edge(s, m1, ());
        g.add_edge(s, m2, ());
        g.add_edge(m1, t, ());
        g.add_edge(m2, t, ());
        let bc = approximate_betweenness(&g, 4, 0);
        assert!((bc[m1.index()] - 0.5).abs() < 1e-12);
        assert!((bc[m2.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_approximates_exact() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..60).map(|_| g.add_vertex(())).collect();
        for _ in 0..300 {
            let a = rng.gen_range(0..60);
            let b = rng.gen_range(0..60);
            if a != b {
                g.add_edge(v[a], v[b], ());
            }
        }
        let exact = approximate_betweenness(&g, 60, 1);
        let approx = approximate_betweenness(&g, 30, 1);
        // Spearman-ish check: the top-exact vertex should be near the top of
        // the approximation.
        let top_exact =
            (0..60).max_by(|&a, &b| exact[a].partial_cmp(&exact[b]).expect("finite")).expect("n>0");
        let mut ranked: Vec<usize> = (0..60).collect();
        ranked.sort_by(|&a, &b| approx[b].partial_cmp(&approx[a]).expect("finite"));
        let pos = ranked.iter().position(|&v| v == top_exact).expect("present");
        assert!(pos < 12, "top exact vertex ranked {pos} in approximation");
    }

    #[test]
    fn empty_and_zero_samples() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert!(approximate_betweenness(&g, 10, 0).is_empty());
        let mut g2: PropertyGraph<(), ()> = PropertyGraph::new();
        g2.add_vertex(());
        assert_eq!(approximate_betweenness(&g2, 0, 0), vec![0.0]);
    }
}
