//! Graph analytics kernels.
//!
//! The paper's veracity analysis uses in/out degree and PageRank
//! ([`degree`], [`pagerank`]); betweenness centrality and connected
//! components are named as properties "additional generation methods" could
//! preserve, so they are provided too ([`betweenness`], [`components`]),
//! plus clustering coefficients ([`clustering`]) used by the richer
//! graph-model literature the paper surveys (BTER et al.).

pub mod assortativity;
pub mod betweenness;
pub mod clustering;
pub mod components;
pub mod degree;
pub mod kcore;
pub mod pagerank;
pub mod scc;
pub mod spectral;

pub use assortativity::{degree_assortativity, degree_assortativity_ooc};
pub use betweenness::approximate_betweenness;
pub use clustering::{
    average_clustering, clustering_coefficients, clustering_coefficients_ooc, coefficients_of,
    triangle_count, ClusteringCoefficients, UndirectedCsr,
};
pub use components::weakly_connected_components;
pub use degree::{degree_distribution, DegreeDistributions};
pub use kcore::{core_numbers, degeneracy};
pub use pagerank::{pagerank, PageRankConfig};
pub use scc::strongly_connected_components;
pub use spectral::{spectral_sketch, spectral_sketch_ooc, SpectralConfig};
