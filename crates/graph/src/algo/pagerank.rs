//! Parallel PageRank.
//!
//! Pull-based power iteration on the in-adjacency CSR: each vertex gathers
//! `rank[u] / out_degree[u]` from its in-neighbors, which is embarrassingly
//! parallel over vertices (each writes only its own slot) — the rayon
//! `par_iter` pattern from the hpc guides. Dangling-vertex mass is
//! redistributed uniformly so ranks always sum to 1.
//!
//! The two scalar reductions of each iteration (dangling mass, L1 delta) use
//! *blocked* deterministic sums ([`dangling_mass`], [`l1_delta`]): fixed
//! [`SUM_BLOCK`]-wide chunks are summed independently and the partials are
//! combined sequentially. Unlike `par_iter().sum()`, whose reduction tree
//! follows work stealing, the result is bit-identical across thread counts
//! and runs — which is what lets the out-of-core kernel
//! (`crate::ooc::pagerank_ooc`) reproduce this function bit-for-bit.

use crate::csr::Csr;
use crate::graph::{PropertyGraph, VertexId};
use rayon::prelude::*;

/// Block width of the deterministic parallel reductions. Fixed (never
/// derived from the thread count) so the floating-point combination tree —
/// and therefore every rank vector — is a pure function of the input.
pub(crate) const SUM_BLOCK: usize = 4096;

/// Deterministic blocked reduction of the rank mass parked on dangling
/// (out-degree zero) vertices.
pub(crate) fn dangling_mass(rank: &[f64], out_deg: &[u64]) -> f64 {
    let partials: Vec<f64> = rank
        .par_chunks(SUM_BLOCK)
        .zip(out_deg.par_chunks(SUM_BLOCK))
        .map(|(r, d)| r.iter().zip(d).map(|(&r, &d)| if d == 0 { r } else { 0.0 }).sum::<f64>())
        .collect();
    partials.iter().sum()
}

/// Deterministic blocked sum of a value vector — the same fixed-block
/// reduction as [`dangling_mass`], shared by the clustering and spectral
/// kernels so their scalar outputs are thread-count-independent too.
pub(crate) fn blocked_sum(xs: &[f64]) -> f64 {
    let partials: Vec<f64> = xs.par_chunks(SUM_BLOCK).map(|c| c.iter().sum::<f64>()).collect();
    partials.iter().sum()
}

/// Deterministic blocked dot product, for the spectral sketch's
/// Gram-Schmidt and Rayleigh-quotient reductions.
pub(crate) fn blocked_dot(a: &[f64], b: &[f64]) -> f64 {
    let partials: Vec<f64> = a
        .par_chunks(SUM_BLOCK)
        .zip(b.par_chunks(SUM_BLOCK))
        .map(|(x, y)| x.iter().zip(y).map(|(&x, &y)| x * y).sum::<f64>())
        .collect();
    partials.iter().sum()
}

/// Deterministic blocked L1 distance between two rank vectors.
pub(crate) fn l1_delta(a: &[f64], b: &[f64]) -> f64 {
    let partials: Vec<f64> = a
        .par_chunks(SUM_BLOCK)
        .zip(b.par_chunks(SUM_BLOCK))
        .map(|(x, y)| x.iter().zip(y).map(|(&x, &y)| (x - y).abs()).sum::<f64>())
        .collect();
    partials.iter().sum()
}

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (the paper's PageRank reference uses 0.85).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iters: 100, tolerance: 1e-9 }
    }
}

/// Computes PageRank; returns one score per vertex, summing to 1.
///
/// Returns an empty vector for an empty graph.
pub fn pagerank<V, E>(g: &PropertyGraph<V, E>, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let in_csr = Csr::in_of(g);
    let out_deg = g.out_degrees();
    let inv_n = 1.0 / n as f64;

    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iters {
        // Mass parked on dangling vertices is spread uniformly.
        let dangling = dangling_mass(&rank, &out_deg);
        let base = (1.0 - cfg.damping) * inv_n + cfg.damping * dangling * inv_n;

        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            let gathered: f64 = in_csr
                .neighbors(VertexId(v as u32))
                .iter()
                .map(|&u| rank[u as usize] / out_deg[u as usize] as f64)
                .sum();
            *slot = base + cfg.damping * gathered;
        });

        let delta = l1_delta(&rank, &next);
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

/// Sequential reference implementation, kept for the parallel-vs-sequential
/// ablation bench and for differential testing.
pub fn pagerank_sequential<V, E>(g: &PropertyGraph<V, E>, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let in_csr = Csr::in_of(g);
    let out_deg = g.out_degrees();
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iters {
        let dangling: f64 =
            rank.iter().zip(out_deg.iter()).map(|(&r, &d)| if d == 0 { r } else { 0.0 }).sum();
        let base = (1.0 - cfg.damping) * inv_n + cfg.damping * dangling * inv_n;
        for (v, slot) in next.iter_mut().enumerate() {
            let gathered: f64 = in_csr
                .neighbors(VertexId(v as u32))
                .iter()
                .map(|&u| rank[u as usize] / out_deg[u as usize] as f64)
                .sum();
            *slot = base + cfg.damping * gathered;
        }
        let delta: f64 = rank.iter().zip(next.iter()).map(|(&a, &b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        let v: Vec<_> = (0..n).map(|_| g.add_vertex(())).collect();
        for i in 0..n {
            g.add_edge(v[i], v[(i + 1) % n], ());
        }
        g
    }

    #[test]
    fn cycle_is_uniform() {
        let g = cycle(8);
        let pr = pagerank(&g, &PageRankConfig::default());
        for &r in &pr {
            assert!((r - 0.125).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        // Star with dangling leaves exercises the dangling-mass path.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        for _ in 0..5 {
            let leaf = g.add_vertex(());
            g.add_edge(hub, leaf, ());
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn sink_hub_accumulates_rank() {
        // Everyone points at vertex 0.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        for _ in 0..9 {
            let v = g.add_vertex(());
            g.add_edge(v, hub, ());
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[0] > pr[1] * 5.0, "hub {} vs leaf {}", pr[0], pr[1]);
    }

    #[test]
    fn matches_hand_computed_two_node() {
        // a <-> b symmetric: both 0.5.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let a = g.add_vertex(());
        let b = g.add_vertex(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!((pr[0] - 0.5).abs() < 1e-9);
        assert!((pr[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_equals_sequential() {
        // A scale-free-ish random graph; both implementations must agree.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..200).map(|_| g.add_vertex(())).collect();
        for _ in 0..1000 {
            let s = rng.gen_range(0..200);
            let t = rng.gen_range(0..(s + 1));
            g.add_edge(v[s], v[t], ());
        }
        let cfg = PageRankConfig::default();
        let par = pagerank(&g, &cfg);
        let seq = pagerank_sequential(&g, &cfg);
        for (a, b) in par.iter().zip(seq.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph_empty_ranks() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn multi_edges_weight_transitions() {
        // a has 3 parallel edges to b and 1 to c: b should receive ~3x c's
        // share of a's rank.
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let a = g.add_vertex(());
        let b = g.add_vertex(());
        let c = g.add_vertex(());
        for _ in 0..3 {
            g.add_edge(a, b, ());
        }
        g.add_edge(a, c, ());
        // Return edges so nothing dangles.
        g.add_edge(b, a, ());
        g.add_edge(c, a, ());
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[1] > pr[2] * 1.5, "b {} vs c {}", pr[1], pr[2]);
    }
}
