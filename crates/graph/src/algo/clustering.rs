//! Triangle counting and clustering coefficients on the simplified
//! undirected skeleton of the multigraph (parallel edges and directions
//! collapse, self-loops dropped) — the property the BTER line of work the
//! paper surveys is built around.
//!
//! Both the in-memory and the streaming entry points reduce the input to
//! the same [`UndirectedCsr`] — a sorted, deduplicated undirected adjacency
//! — and then share one deterministic kernel ([`coefficients_of`]), so
//! [`clustering_coefficients`] and [`clustering_coefficients_ooc`] are
//! bit-for-bit identical on the same logical graph for any batching and any
//! rayon thread count (integer wedge counts; the one floating-point
//! reduction uses the fixed-block deterministic sum shared with PageRank).

use crate::algo::pagerank::blocked_sum;
use crate::graph::PropertyGraph;
use crate::ooc::EdgeScan;
use rayon::prelude::*;

/// Sorted, deduplicated undirected adjacency in CSR form: the simplified
/// skeleton every clustering quantity is defined on. Identical regardless
/// of whether it was built from a materialized graph or an edge scan,
/// because simplification (sort + dedup) erases the insertion order.
#[derive(Debug, Clone)]
pub struct UndirectedCsr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl UndirectedCsr {
    /// Builds from a materialized graph.
    pub fn of_graph<V, E>(g: &PropertyGraph<V, E>) -> Self {
        let n = g.vertex_count();
        let mut counts = vec![0usize; n];
        for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
            if s != t {
                counts[s.index()] += 1;
                counts[t.index()] += 1;
            }
        }
        let mut b = Builder::new(counts);
        for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
            if s != t {
                b.place(s.0, t.0);
            }
        }
        b.finish()
    }

    /// Builds from an edge scan in two streaming passes (count, place).
    /// The adjacency itself is O(vertices + simplified edges) scratch — the
    /// irreducible footprint of wedge closure, counted into
    /// `ooc.peak_scratch_bytes` by [`clustering_coefficients_ooc`].
    pub fn of_scan<S: EdgeScan>(scan: &mut S) -> Result<Self, S::Error> {
        let n = scan.vertex_count()?;
        let mut counts = vec![0usize; n];
        {
            let _span = csb_obs::span_cat("ooc.pass1", "ooc");
            scan.scan_edges(&mut |src, dst| {
                for (&s, &d) in src.iter().zip(dst) {
                    if s != d {
                        counts[s as usize] += 1;
                        counts[d as usize] += 1;
                    }
                }
            })?;
        }
        let mut b = Builder::new(counts);
        {
            let _span = csb_obs::span_cat("ooc.pass2", "ooc");
            scan.scan_edges(&mut |src, dst| {
                for (&s, &d) in src.iter().zip(dst) {
                    if s != d {
                        b.place(s, d);
                    }
                }
            })?;
        }
        Ok(b.finish())
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The sorted, deduplicated neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Bytes held by the adjacency arrays (scratch accounting).
    pub fn scratch_bytes(&self) -> u64 {
        (self.targets.len() * 4 + self.offsets.len() * 8) as u64
    }
}

/// Counting-sort CSR builder shared by the two construction paths.
struct Builder {
    offsets: Vec<usize>,
    cursors: Vec<usize>,
    targets: Vec<u32>,
}

impl Builder {
    fn new(counts: Vec<usize>) -> Self {
        let n = counts.len();
        let mut offsets = vec![0usize; n + 1];
        for (v, &c) in counts.iter().enumerate() {
            offsets[v + 1] = offsets[v] + c;
        }
        let cursors = offsets[..n].to_vec();
        let targets = vec![0u32; offsets[n]];
        Builder { offsets, cursors, targets }
    }

    #[inline]
    fn place(&mut self, s: u32, t: u32) {
        self.targets[self.cursors[s as usize]] = t;
        self.cursors[s as usize] += 1;
        self.targets[self.cursors[t as usize]] = s;
        self.cursors[t as usize] += 1;
    }

    fn finish(mut self) -> UndirectedCsr {
        let n = self.offsets.len() - 1;
        // Per-vertex sort over disjoint slices, in parallel.
        {
            let mut rest: &mut [u32] = &mut self.targets;
            let mut slices = Vec::with_capacity(n);
            for v in 0..n {
                let (head, tail) = rest.split_at_mut(self.offsets[v + 1] - self.offsets[v]);
                slices.push(head);
                rest = tail;
            }
            slices.into_par_iter().for_each(|s| s.sort_unstable());
        }
        // In-place dedup compaction (the write cursor never passes a read).
        let mut new_offsets = vec![0usize; n + 1];
        let mut w = 0usize;
        for (v, off) in new_offsets.iter_mut().enumerate().take(n) {
            *off = w;
            let mut prev = None;
            for i in self.offsets[v]..self.offsets[v + 1] {
                let x = self.targets[i];
                if prev != Some(x) {
                    self.targets[w] = x;
                    w += 1;
                    prev = Some(x);
                }
            }
        }
        new_offsets[n] = w;
        self.targets.truncate(w);
        UndirectedCsr { offsets: new_offsets, targets: self.targets }
    }
}

/// Number of common elements of two sorted slices.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Every clustering quantity of one graph, from one adjacency traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringCoefficients {
    /// Global (transitivity) coefficient: `3 * triangles / wedges`.
    /// Zero when the graph has no wedge.
    pub global: f64,
    /// Average local coefficient over vertices with degree >= 2; zero when
    /// no such vertex exists.
    pub average_local: f64,
    /// Undirected triangles, each counted once.
    pub triangles: u64,
}

/// Computes all clustering quantities on a prebuilt adjacency.
///
/// Per-vertex closed-wedge counts are integers (each vertex's count is the
/// merge-intersection total over its neighbor lists, halved — every closed
/// pair is seen from both endpoints), so the only floating-point reduction
/// is the deterministic blocked sum of the local coefficients.
pub fn coefficients_of(adj: &UndirectedCsr) -> ClusteringCoefficients {
    let n = adj.vertex_count();
    let closed: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|u| {
            let nu = adj.neighbors(u);
            if nu.len() < 2 {
                return 0;
            }
            let mut twice = 0u64;
            for &v in nu {
                twice += intersection_size(nu, adj.neighbors(v as usize)) as u64;
            }
            twice / 2
        })
        .collect();
    let closed_total: u64 = closed.par_iter().sum();
    let wedges: u64 = (0..n)
        .into_par_iter()
        .map(|u| {
            let d = adj.neighbors(u).len() as u64;
            d * (d.saturating_sub(1)) / 2
        })
        .sum();
    let locals: Vec<f64> = closed
        .par_iter()
        .enumerate()
        .map(|(u, &c)| {
            let d = adj.neighbors(u).len() as u64;
            if d < 2 {
                0.0
            } else {
                c as f64 / (d * (d - 1) / 2) as f64
            }
        })
        .collect();
    let eligible = (0..n).filter(|&u| adj.neighbors(u).len() >= 2).count() as u64;
    ClusteringCoefficients {
        global: if wedges == 0 { 0.0 } else { closed_total as f64 / wedges as f64 },
        average_local: if eligible == 0 { 0.0 } else { blocked_sum(&locals) / eligible as f64 },
        triangles: closed_total / 3,
    }
}

/// All clustering quantities of a materialized graph.
pub fn clustering_coefficients<V, E>(g: &PropertyGraph<V, E>) -> ClusteringCoefficients {
    coefficients_of(&UndirectedCsr::of_graph(g))
}

/// Streaming [`clustering_coefficients`]: bit-for-bit identical results
/// from an [`EdgeScan`], building the simplified adjacency in two passes.
pub fn clustering_coefficients_ooc<S: EdgeScan>(
    scan: &mut S,
) -> Result<ClusteringCoefficients, S::Error> {
    let _span = csb_obs::span_cat("ooc.clustering", "ooc");
    let adj = UndirectedCsr::of_scan(scan)?;
    crate::ooc::note_peak_scratch(adj.scratch_bytes() + scan.scratch_bytes());
    Ok(coefficients_of(&adj))
}

/// Counts undirected triangles (each counted once).
pub fn triangle_count<V, E>(g: &PropertyGraph<V, E>) -> u64 {
    clustering_coefficients(g).triangles
}

/// Average local clustering coefficient over vertices with degree >= 2.
/// Returns 0 when no such vertex exists.
pub fn average_clustering<V, E>(g: &PropertyGraph<V, E>) -> f64 {
    clustering_coefficients(g).average_local
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use crate::ooc::GraphScan;

    fn triangle() -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        let v: Vec<_> = (0..3).map(|_| g.add_vertex(())).collect();
        g.add_edge(v[0], v[1], ());
        g.add_edge(v[1], v[2], ());
        g.add_edge(v[2], v[0], ());
        g
    }

    #[test]
    fn single_triangle() {
        let g = triangle();
        assert_eq!(triangle_count(&g), 1);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        let c = clustering_coefficients(&g);
        assert_eq!(c.global, 1.0);
        assert_eq!(c.triangles, 1);
    }

    #[test]
    fn multi_edges_and_direction_do_not_double_count() {
        let mut g = triangle();
        // Duplicate and reverse edges must not create new triangles.
        g.add_edge(crate::graph::VertexId(1), crate::graph::VertexId(0), ());
        g.add_edge(crate::graph::VertexId(0), crate::graph::VertexId(1), ());
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(())).collect();
        for i in 0..4 {
            g.add_edge(v[i], v[(i + 1) % 4], ());
        }
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(clustering_coefficients(&g).global, 0.0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(())).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(v[i], v[j], ());
            }
        }
        assert_eq!(triangle_count(&g), 4);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficients(&g).global, 1.0);
    }

    #[test]
    fn paper_example_clustering() {
        // Triangle plus a pendant on vertex 0:
        // c(0) = 1/3 (neighbors 1,2,3; only (1,2) closed), c(1)=c(2)=1,
        // c(3) undefined (degree 1) -> average over eligible = (1/3+1+1)/3.
        // Global: closed wedges 3 (one per triangle corner), total wedges
        // 3 + 1 + 1 + 0 = 5 -> 3/5.
        let mut g = triangle();
        let p = g.add_vertex(());
        g.add_edge(crate::graph::VertexId(0), p, ());
        let expect = (1.0 / 3.0 + 1.0 + 1.0) / 3.0;
        let c = clustering_coefficients(&g);
        assert!((c.average_local - expect).abs() < 1e-12);
        assert!((c.global - 0.6).abs() < 1e-12);
        assert_eq!(c.triangles, 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = triangle();
        g.add_edge(crate::graph::VertexId(0), crate::graph::VertexId(0), ());
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
        let c = clustering_coefficients(&g);
        assert_eq!(c.global, 0.0);
        assert_eq!(c.triangles, 0);
    }

    #[test]
    fn ooc_is_bit_identical_to_in_memory() {
        let mut g = triangle();
        let p = g.add_vertex(());
        g.add_edge(crate::graph::VertexId(0), p, ());
        g.add_edge(crate::graph::VertexId(2), crate::graph::VertexId(2), ());
        let mem = clustering_coefficients(&g);
        for batch in [1usize, 2, 3, usize::MAX] {
            let ooc =
                clustering_coefficients_ooc(&mut GraphScan::of(&g).with_batch(batch)).unwrap();
            assert_eq!(mem.global.to_bits(), ooc.global.to_bits(), "batch {batch}");
            assert_eq!(mem.average_local.to_bits(), ooc.average_local.to_bits());
            assert_eq!(mem.triangles, ooc.triangles);
        }
    }
}
