//! Triangle counting and clustering coefficients on the simplified
//! undirected skeleton of the multigraph (parallel edges and directions
//! collapse, self-loops dropped) — the property the BTER line of work the
//! paper surveys is built around.

use crate::graph::PropertyGraph;
use rayon::prelude::*;

/// Builds a sorted, deduplicated undirected adjacency list.
fn undirected_adjacency<V, E>(g: &PropertyGraph<V, E>) -> Vec<Vec<u32>> {
    let n = g.vertex_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        if s != t {
            adj[s.index()].push(t.0);
            adj[t.index()].push(s.0);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Number of common elements of two sorted slices.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Counts undirected triangles (each counted once).
pub fn triangle_count<V, E>(g: &PropertyGraph<V, E>) -> u64 {
    let adj = undirected_adjacency(g);
    // For each edge (u,v) with u < v, count common neighbors w > v to count
    // each triangle exactly once.
    adj.par_iter()
        .enumerate()
        .map(|(u, nu)| {
            let mut local = 0u64;
            for &v in nu.iter().filter(|&&v| (v as usize) > u) {
                let nv = &adj[v as usize];
                // Common neighbors greater than v.
                let start_u = nu.partition_point(|&x| x <= v);
                let start_v = nv.partition_point(|&x| x <= v);
                local += intersection_size(&nu[start_u..], &nv[start_v..]) as u64;
            }
            local
        })
        .sum()
}

/// Average local clustering coefficient over vertices with degree >= 2.
/// Returns 0 when no such vertex exists.
pub fn average_clustering<V, E>(g: &PropertyGraph<V, E>) -> f64 {
    let adj = undirected_adjacency(g);
    let (sum, eligible) = adj
        .par_iter()
        .map(|nu| {
            let d = nu.len();
            if d < 2 {
                return (0.0f64, 0u64);
            }
            let mut closed = 0u64;
            for (i, &v) in nu.iter().enumerate() {
                for &w in &nu[i + 1..] {
                    // Edge between v and w?
                    if adj[v as usize].binary_search(&w).is_ok() {
                        closed += 1;
                    }
                }
            }
            let possible = (d * (d - 1) / 2) as f64;
            (closed as f64 / possible, 1u64)
        })
        .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if eligible == 0 {
        0.0
    } else {
        sum / eligible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn triangle() -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        let v: Vec<_> = (0..3).map(|_| g.add_vertex(())).collect();
        g.add_edge(v[0], v[1], ());
        g.add_edge(v[1], v[2], ());
        g.add_edge(v[2], v[0], ());
        g
    }

    #[test]
    fn single_triangle() {
        let g = triangle();
        assert_eq!(triangle_count(&g), 1);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_edges_and_direction_do_not_double_count() {
        let mut g = triangle();
        // Duplicate and reverse edges must not create new triangles.
        g.add_edge(crate::graph::VertexId(1), crate::graph::VertexId(0), ());
        g.add_edge(crate::graph::VertexId(0), crate::graph::VertexId(1), ());
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(())).collect();
        for i in 0..4 {
            g.add_edge(v[i], v[(i + 1) % 4], ());
        }
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(())).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(v[i], v[j], ());
            }
        }
        assert_eq!(triangle_count(&g), 4);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_clustering() {
        // Triangle plus a pendant on vertex 0:
        // c(0) = 1/3 (neighbors 1,2,3; only (1,2) closed), c(1)=c(2)=1,
        // c(3) undefined (degree 1) -> average over eligible = (1/3+1+1)/3.
        let mut g = triangle();
        let p = g.add_vertex(());
        g.add_edge(crate::graph::VertexId(0), p, ());
        let expect = (1.0 / 3.0 + 1.0 + 1.0) / 3.0;
        assert!((average_clustering(&g) - expect).abs() < 1e-12);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = triangle();
        g.add_edge(crate::graph::VertexId(0), crate::graph::VertexId(0), ());
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
