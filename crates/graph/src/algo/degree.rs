//! Degree distributions — the first structural property the seed analysis
//! extracts (paper Fig. 1 "structural and attributes' properties analysis").

use crate::graph::PropertyGraph;
use csb_stats::EmpiricalDistribution;

/// The in- and out-degree empirical distributions of a graph, the direct
/// inputs of PGPBA (paper Fig. 2 takes `Distribution outDegree, inDegree`).
#[derive(Debug, Clone)]
pub struct DegreeDistributions {
    /// Distribution of in-degrees over vertices.
    pub in_degree: EmpiricalDistribution,
    /// Distribution of out-degrees over vertices.
    pub out_degree: EmpiricalDistribution,
}

/// Computes both degree distributions.
///
/// # Panics
/// Panics on an empty graph (no distribution to extract).
pub fn degree_distribution<V, E>(g: &PropertyGraph<V, E>) -> DegreeDistributions {
    assert!(g.vertex_count() > 0, "degree distribution of empty graph");
    DegreeDistributions {
        in_degree: EmpiricalDistribution::from_samples(g.in_degrees()),
        out_degree: EmpiricalDistribution::from_samples(g.out_degrees()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PropertyGraph, VertexId};

    #[test]
    fn star_graph_distributions() {
        // Hub 0 -> 1..=4: out-degrees [4,0,0,0,0], in-degrees [0,1,1,1,1].
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let hub = g.add_vertex(());
        for _ in 0..4 {
            let leaf = g.add_vertex(());
            g.add_edge(hub, leaf, ());
        }
        let d = degree_distribution(&g);
        assert!((d.out_degree.pmf(0) - 0.8).abs() < 1e-12);
        assert!((d.out_degree.pmf(4) - 0.2).abs() < 1e-12);
        assert!((d.in_degree.pmf(1) - 0.8).abs() < 1e-12);
        assert!((d.in_degree.pmf(0) - 0.2).abs() < 1e-12);
        let _ = VertexId(0);
    }

    #[test]
    fn mean_degree_equals_edges_over_vertices() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..10).map(|_| g.add_vertex(())).collect();
        for i in 0..10 {
            for j in 0..3 {
                g.add_edge(v[i], v[(i + j + 1) % 10], ());
            }
        }
        let d = degree_distribution(&g);
        assert!((d.out_degree.mean() - 3.0).abs() < 1e-12);
        assert!((d.in_degree.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let _ = degree_distribution(&g);
    }
}
