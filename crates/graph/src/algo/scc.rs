//! Strongly connected components (iterative Tarjan).
//!
//! SCCs expose the mutual-reachability structure of a network trace —
//! bidirectional communication cliques — complementing the weak components
//! the paper lists. The implementation is Tarjan's algorithm with an
//! explicit stack so deep graphs cannot overflow the call stack.

use crate::csr::Csr;
use crate::graph::{PropertyGraph, VertexId};

/// SCC labeling.
#[derive(Debug, Clone)]
pub struct Sccs {
    /// Component id per vertex (dense, 0-based, reverse topological order).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of the largest component.
    pub largest: usize,
}

const UNVISITED: u32 = u32::MAX;

/// Computes strongly connected components.
pub fn strongly_connected_components<V, E>(g: &PropertyGraph<V, E>) -> Sccs {
    let n = g.vertex_count();
    let csr = Csr::out_of(g);

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut labels = vec![0u32; n];
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    let mut sizes: Vec<usize> = Vec::new();

    // Explicit DFS frame: (vertex, next-neighbor offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ni)) = frames.last_mut() {
            let vu = v as usize;
            if *ni == 0 {
                index[vu] = next_index;
                lowlink[vu] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            let neighbors = csr.neighbors(VertexId(v));
            let mut advanced = false;
            while *ni < neighbors.len() {
                let w = neighbors[*ni];
                *ni += 1;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[wu] {
                    lowlink[vu] = lowlink[vu].min(index[wu]);
                }
            }
            if advanced {
                continue;
            }
            // v finished: pop an SCC if v is a root.
            if lowlink[vu] == index[vu] {
                let mut size = 0usize;
                loop {
                    let w = stack.pop().expect("stack non-empty at SCC root");
                    on_stack[w as usize] = false;
                    labels[w as usize] = comp_count;
                    size += 1;
                    if w == v {
                        break;
                    }
                }
                sizes.push(size);
                comp_count += 1;
            }
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                let pu = parent as usize;
                lowlink[pu] = lowlink[pu].min(lowlink[vu]);
            }
        }
    }
    Sccs { labels, count: comp_count as usize, largest: sizes.iter().copied().max().unwrap_or(0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    #[test]
    fn cycle_is_one_scc() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, 1);
        assert_eq!(s.largest, 4);
        assert!(s.labels.iter().all(|&l| l == s.labels[0]));
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, 4);
        assert_eq!(s.largest, 1);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} <-> cycle, {2,3} <-> cycle, one-way bridge 1 -> 2.
        let g = graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, 2);
        assert_eq!(s.labels[0], s.labels[1]);
        assert_eq!(s.labels[2], s.labels[3]);
        assert_ne!(s.labels[0], s.labels[2]);
        // Reverse topological order: the sink SCC {2,3} gets the lower id.
        assert!(s.labels[2] < s.labels[0]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 50k-vertex path: a recursive Tarjan would blow the stack.
        let n = 50_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph(n, &edges);
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, n as usize);
    }

    #[test]
    fn empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let s = strongly_connected_components(&g);
        assert_eq!(s.count, 0);
        assert_eq!(s.largest, 0);
    }
}
