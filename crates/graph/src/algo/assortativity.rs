//! Degree assortativity (Newman's r): the Pearson correlation of the total
//! degrees at the two endpoints of each edge. Social networks are
//! assortative (r > 0); technological/traffic networks — and BA-style
//! generators — are disassortative (r < 0): hubs talk to leaves.

use crate::graph::PropertyGraph;
use crate::ooc::{degree_counts_ooc, EdgeScan};

/// The five Pearson sums of Newman's r, accumulated one edge at a time.
///
/// Shared by the in-memory and streaming entry points: both push every edge
/// in stream order through the identical floating-point sequence, which is
/// what makes [`degree_assortativity_ooc`] bit-for-bit equal to
/// [`degree_assortativity`] for any batching (the accumulation is
/// sequential, so thread count cannot enter either).
#[derive(Debug, Default, Clone, Copy)]
struct PearsonAccum {
    sx: f64,
    sy: f64,
    sxy: f64,
    sxx: f64,
    syy: f64,
}

impl PearsonAccum {
    #[inline]
    fn push(&mut self, x: f64, y: f64) {
        self.sx += x;
        self.sy += y;
        self.sxy += x * y;
        self.sxx += x * x;
        self.syy += y * y;
    }

    fn finish(self, edges: u64) -> f64 {
        let n = edges as f64;
        let cov = self.sxy / n - (self.sx / n) * (self.sy / n);
        let vx = self.sxx / n - (self.sx / n).powi(2);
        let vy = self.syy / n - (self.sy / n).powi(2);
        if vx <= 0.0 || vy <= 0.0 {
            0.0
        } else {
            cov / (vx * vy).sqrt()
        }
    }
}

/// Newman's degree assortativity coefficient over directed edges, using
/// total degrees at both endpoints. Returns 0 for graphs with fewer than
/// two edges or zero degree variance.
pub fn degree_assortativity<V, E>(g: &PropertyGraph<V, E>) -> f64 {
    let m = g.edge_count();
    if m < 2 {
        return 0.0;
    }
    let mut degree = vec![0u64; g.vertex_count()];
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        degree[s.index()] += 1;
        degree[t.index()] += 1;
    }
    let mut acc = PearsonAccum::default();
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        acc.push(degree[s.index()] as f64, degree[t.index()] as f64);
    }
    acc.finish(m as u64)
}

/// Streaming [`degree_assortativity`]: one degree-counting pass plus one
/// moment-accumulation pass in stream order, O(vertices + batch) scratch,
/// bit-identical to the in-memory coefficient.
pub fn degree_assortativity_ooc<S: EdgeScan>(scan: &mut S) -> Result<f64, S::Error> {
    let _span = csb_obs::span_cat("ooc.assortativity", "ooc");
    let m = scan.edge_count()?;
    if m < 2 {
        return Ok(0.0);
    }
    let degree = degree_counts_ooc(scan)?.total();
    let mut acc = PearsonAccum::default();
    {
        let _span = csb_obs::span_cat("ooc.pass2", "ooc");
        scan.scan_edges(&mut |src, dst| {
            for (&s, &d) in src.iter().zip(dst) {
                acc.push(degree[s as usize] as f64, degree[d as usize] as f64);
            }
        })?;
    }
    Ok(acc.finish(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    #[test]
    fn star_is_strongly_disassortative() {
        let edges: Vec<(u32, u32)> = (1..=8).map(|i| (0, i)).collect();
        let g = graph(9, &edges);
        // Every edge joins the degree-8 hub to a degree-1 leaf: with zero
        // per-endpoint variance on each side, the coefficient degenerates;
        // add one leaf-leaf edge to break the tie and expose the sign.
        let mut edges2 = edges;
        edges2.push((1, 2));
        let g2 = graph(9, &edges2);
        assert!(degree_assortativity(&g2) < -0.3, "r = {}", degree_assortativity(&g2));
        let _ = g;
    }

    #[test]
    fn regular_ring_has_no_preference() {
        let n = 20u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph(n, &edges);
        // All degrees equal -> zero variance -> defined as 0.
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn assortative_construction() {
        // Two hubs wired to each other repeatedly + separate leaf pairs:
        // high-degree endpoints pair with high, low with low.
        let mut edges = Vec::new();
        for _ in 0..10 {
            edges.push((0, 1));
        }
        for i in 0..5u32 {
            edges.push((2 + 2 * i, 3 + 2 * i));
        }
        let g = graph(12, &edges);
        assert!(degree_assortativity(&g) > 0.5, "r = {}", degree_assortativity(&g));
    }

    #[test]
    fn mixed_orientation_star_is_perfectly_disassortative() {
        // Hub 0 with 20 leaves, half the edges oriented each way: endpoint
        // degrees are perfectly anti-correlated, r = -1.
        let mut edges = Vec::new();
        for i in 1..=10u32 {
            edges.push((0, i));
        }
        for i in 11..=20u32 {
            edges.push((i, 0));
        }
        let g = graph(21, &edges);
        let r = degree_assortativity(&g);
        assert!((r + 1.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn tiny_graphs_are_zero() {
        let g = graph(2, &[(0, 1)]);
        assert_eq!(degree_assortativity(&g), 0.0);
        let empty: PropertyGraph<(), ()> = PropertyGraph::new();
        assert_eq!(degree_assortativity(&empty), 0.0);
    }

    #[test]
    fn path_graph_hand_computed() {
        // P3 (0-1-2): endpoint degree pairs (1,2) and (2,1) are perfectly
        // anti-correlated -> r = -1 exactly.
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(degree_assortativity(&g), -1.0);
    }

    #[test]
    fn ooc_is_bit_identical_to_in_memory() {
        use crate::ooc::GraphScan;
        let mut edges = vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 3)];
        for i in 0..6u32 {
            edges.push((i % 4, (i * 7 + 1) % 4));
        }
        let g = graph(4, &edges);
        let mem = degree_assortativity(&g);
        for batch in [1usize, 2, 5, usize::MAX] {
            let ooc = degree_assortativity_ooc(&mut GraphScan::of(&g).with_batch(batch)).unwrap();
            assert_eq!(mem.to_bits(), ooc.to_bits(), "batch {batch}");
        }
    }
}
