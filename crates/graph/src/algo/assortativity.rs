//! Degree assortativity (Newman's r): the Pearson correlation of the total
//! degrees at the two endpoints of each edge. Social networks are
//! assortative (r > 0); technological/traffic networks — and BA-style
//! generators — are disassortative (r < 0): hubs talk to leaves.

use crate::graph::PropertyGraph;

/// Newman's degree assortativity coefficient over directed edges, using
/// total degrees at both endpoints. Returns 0 for graphs with fewer than
/// two edges or zero degree variance.
pub fn degree_assortativity<V, E>(g: &PropertyGraph<V, E>) -> f64 {
    let m = g.edge_count();
    if m < 2 {
        return 0.0;
    }
    let mut degree = vec![0u64; g.vertex_count()];
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        degree[s.index()] += 1;
        degree[t.index()] += 1;
    }
    let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        let x = degree[s.index()] as f64;
        let y = degree[t.index()] as f64;
        sx += x;
        sy += y;
        sxy += x * y;
        sxx += x * x;
        syy += y * y;
    }
    let n = m as f64;
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n).powi(2);
    let vy = syy / n - (sy / n).powi(2);
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    #[test]
    fn star_is_strongly_disassortative() {
        let edges: Vec<(u32, u32)> = (1..=8).map(|i| (0, i)).collect();
        let g = graph(9, &edges);
        // Every edge joins the degree-8 hub to a degree-1 leaf: with zero
        // per-endpoint variance on each side, the coefficient degenerates;
        // add one leaf-leaf edge to break the tie and expose the sign.
        let mut edges2 = edges;
        edges2.push((1, 2));
        let g2 = graph(9, &edges2);
        assert!(degree_assortativity(&g2) < -0.3, "r = {}", degree_assortativity(&g2));
        let _ = g;
    }

    #[test]
    fn regular_ring_has_no_preference() {
        let n = 20u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph(n, &edges);
        // All degrees equal -> zero variance -> defined as 0.
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn assortative_construction() {
        // Two hubs wired to each other repeatedly + separate leaf pairs:
        // high-degree endpoints pair with high, low with low.
        let mut edges = Vec::new();
        for _ in 0..10 {
            edges.push((0, 1));
        }
        for i in 0..5u32 {
            edges.push((2 + 2 * i, 3 + 2 * i));
        }
        let g = graph(12, &edges);
        assert!(degree_assortativity(&g) > 0.5, "r = {}", degree_assortativity(&g));
    }

    #[test]
    fn mixed_orientation_star_is_perfectly_disassortative() {
        // Hub 0 with 20 leaves, half the edges oriented each way: endpoint
        // degrees are perfectly anti-correlated, r = -1.
        let mut edges = Vec::new();
        for i in 1..=10u32 {
            edges.push((0, i));
        }
        for i in 11..=20u32 {
            edges.push((i, 0));
        }
        let g = graph(21, &edges);
        let r = degree_assortativity(&g);
        assert!((r + 1.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn tiny_graphs_are_zero() {
        let g = graph(2, &[(0, 1)]);
        assert_eq!(degree_assortativity(&g), 0.0);
        let empty: PropertyGraph<(), ()> = PropertyGraph::new();
        assert_eq!(degree_assortativity(&empty), 0.0);
    }
}
