//! Spectral sketch: the top eigenvalues of the symmetric normalized
//! Laplacian, estimated by deflated power iteration over the edge stream.
//!
//! The graph is treated as an undirected multigraph: every directed edge
//! `(s, d)` contributes weight `1 / sqrt(deg(s) * deg(d))` to both `A[s][d]`
//! and `A[d][s]` of the normalized adjacency `S = D^-1/2 A D^-1/2`, with
//! `deg` the total (in + out) degree; the operator is `L = I - S`, whose
//! eigenvalues lie in `[0, 2]` and are scale-free — comparable across graph
//! sizes, which is what a cross-generator benchmark needs. Isolated
//! vertices have an empty `S` row and therefore eigenvalue 1 under this
//! convention.
//!
//! **Determinism.** The sketch is a pure function of the logical graph:
//! start vectors come from a fixed splitmix64 stream (no RNG state), the
//! iteration count is fixed (no data-dependent early exit), every dot
//! product / norm uses the fixed-block deterministic reductions shared with
//! PageRank, and the per-edge matvec scatters destination-blocked exactly
//! like the OOC PageRank kernel — so each slot's accumulation order, and
//! every bit of the result, is independent of batch width and thread count.
//! That makes the in-memory wrapper ([`spectral_sketch`]) and the streaming
//! kernel ([`spectral_sketch_ooc`]) bit-for-bit identical by construction,
//! and the conformance suite checks the non-trivial half: store bytes
//! replayed at any chunking reproduce the in-memory sketch.

use crate::algo::pagerank::blocked_dot;
use crate::graph::PropertyGraph;
use crate::ooc::{degree_counts_ooc, note_peak_scratch, EdgeScan, GraphScan, SCATTER_MIN_VERTICES};
use rayon::prelude::*;

/// Spectral sketch parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// How many top eigenvalues to estimate (capped at the vertex count).
    pub eigenvalues: usize,
    /// Power iterations per eigenpair — fixed, never data-dependent, so the
    /// sketch stays deterministic.
    pub iterations: usize,
    /// Seed of the deterministic start-vector stream.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig { eigenvalues: 6, iterations: 30, seed: 0x5BEC_14A1 }
    }
}

/// splitmix64 — the stateless mixer behind the start vectors.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pseudo-random start vector for eigenpair `j`: each slot is a pure
/// function of `(seed, j, index)`, uniform in `[-0.5, 0.5)`.
fn start_vector(n: usize, seed: u64, j: u64) -> Vec<f64> {
    let base = splitmix(seed ^ j.wrapping_mul(0xA076_1D64_78BD_642F));
    (0..n)
        .into_par_iter()
        .map(|i| (splitmix(base.wrapping_add(i as u64)) >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect()
}

/// Applies the normalized-adjacency subtraction of one batch: for each edge,
/// `y[d] -= c * x[s]` then `y[s] -= c * x[d]` with `c = w[s] * w[d]`. The
/// parallel path partitions destinations into blocks exactly like the OOC
/// PageRank scatter, preserving each slot's sequential accumulation order.
fn scatter_sym(y: &mut [f64], x: &[f64], w: &[f64], src: &[u32], dst: &[u32]) {
    let n = y.len();
    let threads = rayon::current_num_threads();
    if threads <= 1 || n < SCATTER_MIN_VERTICES {
        for (&s, &d) in src.iter().zip(dst) {
            let (s, d) = (s as usize, d as usize);
            let c = w[s] * w[d];
            y[d] -= c * x[s];
            y[s] -= c * x[d];
        }
        return;
    }
    let block = n.div_ceil(2 * threads).max(1);
    y.par_chunks_mut(block).enumerate().for_each(|(bi, slots)| {
        let lo = bi * block;
        let hi = lo + slots.len();
        for (&s, &d) in src.iter().zip(dst) {
            let (s, d) = (s as usize, d as usize);
            let c = w[s] * w[d];
            if (lo..hi).contains(&d) {
                slots[d - lo] -= c * x[s];
            }
            if (lo..hi).contains(&s) {
                slots[s - lo] -= c * x[d];
            }
        }
    });
}

/// One Laplacian matvec `y = x - S x` over the edge stream.
fn lap_matvec<S: EdgeScan>(
    scan: &mut S,
    x: &[f64],
    w: &[f64],
    y: &mut [f64],
) -> Result<(), S::Error> {
    let _span = csb_obs::span_cat("ooc.pass2", "ooc");
    y.copy_from_slice(x);
    scan.scan_edges(&mut |src, dst| scatter_sym(y, x, w, src, dst))?;
    csb_obs::metrics::counter_add("ooc.spectral_matvecs", 1);
    Ok(())
}

/// Projects `x` off `basis` (sequential Gram-Schmidt, deterministic blocked
/// dots) and normalizes it. Returns false when `x` vanished.
fn orthonormalize(x: &mut [f64], basis: &[Vec<f64>]) -> bool {
    for b in basis {
        let c = blocked_dot(x, b);
        x.par_iter_mut().zip(b.par_iter()).for_each(|(xi, &bi)| *xi -= c * bi);
    }
    let norm = blocked_dot(x, x).sqrt();
    if norm <= 1e-12 {
        return false;
    }
    let inv = 1.0 / norm;
    x.par_iter_mut().for_each(|v| *v *= inv);
    true
}

/// Streaming spectral sketch: the `cfg.eigenvalues` largest eigenvalues of
/// the normalized Laplacian, descending (up to power-iteration accuracy),
/// estimated with `iterations + 1` edge scans per eigenpair. Scratch is
/// O(`eigenvalues` * vertices + batch).
/// The result is sorted descending with a deterministic total order.
pub fn spectral_sketch_ooc<S: EdgeScan>(
    scan: &mut S,
    cfg: &SpectralConfig,
) -> Result<Vec<f64>, S::Error> {
    let _span = csb_obs::span_cat("ooc.spectral", "ooc");
    let n = scan.vertex_count()?;
    let k = cfg.eigenvalues.min(n);
    if k == 0 {
        return Ok(Vec::new());
    }
    let deg = {
        let counts = degree_counts_ooc(scan)?;
        counts.total()
    };
    let inv_sqrt: Vec<f64> =
        deg.iter().map(|&d| if d > 0 { 1.0 / (d as f64).sqrt() } else { 0.0 }).collect();
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut evals = Vec::with_capacity(k);
    let mut y = vec![0.0f64; n];
    for j in 0..k {
        let mut x = start_vector(n, cfg.seed, j as u64);
        let mut alive = orthonormalize(&mut x, &basis);
        if alive {
            for _ in 0..cfg.iterations {
                lap_matvec(scan, &x, &inv_sqrt, &mut y)?;
                std::mem::swap(&mut x, &mut y);
                if !orthonormalize(&mut x, &basis) {
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            lap_matvec(scan, &x, &inv_sqrt, &mut y)?;
            evals.push(blocked_dot(&x, &y));
        } else {
            // The remaining subspace is numerically exhausted (start vector
            // collapsed onto the basis): report zero mass.
            x.iter_mut().for_each(|v| *v = 0.0);
            evals.push(0.0);
        }
        basis.push(x);
    }
    // Deflation discovers eigenpairs in roughly — not exactly — descending
    // order; sort so the sketch is rank-aligned across graphs. total_cmp is
    // a deterministic total order, so this cannot break bit-exactness.
    evals.sort_unstable_by(|a: &f64, b: &f64| b.total_cmp(a));
    note_peak_scratch(((k + 3) * n * 8) as u64 + scan.scratch_bytes());
    Ok(evals)
}

/// In-memory spectral sketch — defined as the streaming kernel applied to
/// the graph's own edge stream, so the two are identical by construction.
pub fn spectral_sketch<V, E>(g: &PropertyGraph<V, E>, cfg: &SpectralConfig) -> Vec<f64> {
    match spectral_sketch_ooc(&mut GraphScan::of(g), cfg) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PropertyGraph, VertexId};

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    #[test]
    fn empty_graph_is_empty_sketch() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert!(spectral_sketch(&g, &SpectralConfig::default()).is_empty());
    }

    #[test]
    fn single_edge_spectrum() {
        // K2's normalized Laplacian has eigenvalues {0, 2}.
        let g = graph(2, &[(0, 1)]);
        let cfg = SpectralConfig { eigenvalues: 2, ..SpectralConfig::default() };
        let evals = spectral_sketch(&g, &cfg);
        assert!((evals[0] - 2.0).abs() < 1e-9, "lambda_max = {}", evals[0]);
        assert!(evals[1].abs() < 1e-9, "lambda_2 = {}", evals[1]);
    }

    #[test]
    fn triangle_spectrum() {
        // The triangle's normalized Laplacian spectrum is {0, 1.5, 1.5}.
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let cfg = SpectralConfig { eigenvalues: 3, ..SpectralConfig::default() };
        let evals = spectral_sketch(&g, &cfg);
        assert!((evals[0] - 1.5).abs() < 1e-6, "{evals:?}");
        assert!((evals[1] - 1.5).abs() < 1e-6, "{evals:?}");
        assert!(evals[2].abs() < 1e-6, "{evals:?}");
    }

    #[test]
    fn isolated_vertices_contribute_eigenvalue_one() {
        let g = graph(3, &[]);
        let evals = spectral_sketch(&g, &SpectralConfig::default());
        assert_eq!(evals.len(), 3);
        for l in &evals {
            assert!((l - 1.0).abs() < 1e-9, "{evals:?}");
        }
    }

    #[test]
    fn sketch_is_batching_invariant() {
        let edges: Vec<(u32, u32)> =
            (0..40u32).map(|i| (i % 9, (i * 7 + 3) % 9)).chain([(0, 0), (3, 3)]).collect();
        let g = graph(9, &edges);
        let cfg = SpectralConfig::default();
        let mem = spectral_sketch(&g, &cfg);
        for batch in [1usize, 2, 7, 64, usize::MAX] {
            let ooc = spectral_sketch_ooc(&mut GraphScan::of(&g).with_batch(batch), &cfg).unwrap();
            assert_eq!(mem.len(), ooc.len());
            for (a, b) in mem.iter().zip(ooc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn eigenvalues_stay_in_range() {
        let edges: Vec<(u32, u32)> = (0..120u32).map(|i| (i % 25, (i * 13 + 1) % 25)).collect();
        let g = graph(30, &edges);
        let evals = spectral_sketch(&g, &SpectralConfig::default());
        assert_eq!(evals.len(), 6);
        for &l in &evals {
            assert!((-1e-9..=2.0 + 1e-9).contains(&l), "{evals:?}");
        }
        // Sorted descending by construction.
        for w in evals.windows(2) {
            assert!(w[0] >= w[1], "{evals:?}");
        }
    }

    #[test]
    fn seed_changes_start_vectors_but_barely_moves_converged_estimates() {
        // A star's normalized Laplacian has spectrum {0, 1, ..., 1, 2}: the
        // wide top gap makes the power iteration converge well within the
        // default budget, so the start seed must not matter.
        let edges: Vec<(u32, u32)> = (1..15u32).map(|i| (0, i)).collect();
        let g = graph(15, &edges);
        let a = spectral_sketch(&g, &SpectralConfig::default());
        let b = spectral_sketch(&g, &SpectralConfig { seed: 99, ..SpectralConfig::default() });
        assert!((a[0] - 2.0).abs() < 1e-9, "lambda_max = {}", a[0]);
        assert!((a[0] - b[0]).abs() < 1e-9, "{} vs {}", a[0], b[0]);
    }
}
