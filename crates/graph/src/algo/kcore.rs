//! k-core decomposition (Matula-Beck peeling) on the undirected skeleton.
//!
//! Core numbers locate the dense backbone of a trace graph (server farms,
//! botnets) — a robustness statistic scale-free generators are often judged
//! on.

use crate::graph::PropertyGraph;

/// Core number of every vertex: the largest `k` such that the vertex
/// belongs to a subgraph where every vertex has (undirected) degree >= k.
/// Parallel edges and self-loops are ignored.
pub fn core_numbers<V, E>(g: &PropertyGraph<V, E>) -> Vec<u32> {
    let n = g.vertex_count();
    // Deduplicated undirected adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        if s != t {
            adj[s.index()].push(t.0);
            adj[t.index()].push(s.0);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut degree: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();

    // Bucket-queue peel: process vertices in nondecreasing degree order.
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_degree + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d as usize].push(v as u32);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_k = 0u32;
    for d in 0..=max_degree {
        let mut i = 0;
        // Buckets grow as neighbors get demoted into them; index loop.
        while i < buckets[d].len() {
            let v = buckets[d][i];
            i += 1;
            let vu = v as usize;
            if removed[vu] || degree[vu] as usize != d {
                continue;
            }
            current_k = current_k.max(d as u32);
            core[vu] = current_k;
            removed[vu] = true;
            for &w in &adj[vu] {
                let wu = w as usize;
                if !removed[wu] && degree[wu] > d as u32 {
                    degree[wu] -= 1;
                    buckets[degree[wu] as usize].push(w);
                }
            }
        }
    }
    core
}

/// The degeneracy: the maximum core number.
pub fn degeneracy<V, E>(g: &PropertyGraph<V, E>) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;

    fn graph(n: u32, edges: &[(u32, u32)]) -> PropertyGraph<(), ()> {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_vertex(());
        }
        for &(s, d) in edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        g
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle {0,1,2} is a 2-core; pendant 3 is a 1-core.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = graph(5, &edges);
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }

    #[test]
    fn path_is_one_core() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(core_numbers(&g).iter().all(|&c| c == 1));
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = graph(3, &[(0, 1)]);
        assert_eq!(core_numbers(&g)[2], 0);
    }

    #[test]
    fn multi_edges_and_direction_ignored() {
        let g = graph(3, &[(0, 1), (1, 0), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2]);
    }

    #[test]
    fn clique_plus_periphery() {
        // 4-clique {0..3} with a chain 3-4-5 hanging off.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        edges.push((3, 4));
        edges.push((4, 5));
        let g = graph(6, &edges);
        let c = core_numbers(&g);
        assert_eq!(&c[..4], &[3, 3, 3, 3]);
        assert_eq!(&c[4..], &[1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }
}
