//! Weakly connected components via union-find (path halving + union by
//! size) — one of the additional structural properties the paper cites
//! (Hirschberg et al.) for future generation methods.

use crate::graph::PropertyGraph;

/// Disjoint-set forest over `n` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Component labeling of a graph's vertices (edge direction ignored).
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per vertex (ids are representative vertex indices,
    /// relabeled densely from 0).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Computes weakly connected components.
pub fn weakly_connected_components<V, E>(g: &PropertyGraph<V, E>) -> Components {
    let n = g.vertex_count();
    let mut uf = UnionFind::new(n);
    for (s, t) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        uf.union(s.0, t.0);
    }
    // Dense relabeling.
    let mut labels = vec![0u32; n];
    let mut next = 0u32;
    let mut map = std::collections::HashMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n as u32 {
        let root = uf.find(v);
        let id = *map.entry(root).or_insert_with(|| {
            let id = next;
            next += 1;
            sizes.push(0);
            id
        });
        labels[v as usize] = id;
        sizes[id as usize] += 1;
    }
    Components { labels, count: next as usize, largest: sizes.iter().copied().max().unwrap_or(0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    #[test]
    fn two_islands() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let v: Vec<_> = (0..6).map(|_| g.add_vertex(())).collect();
        g.add_edge(v[0], v[1], ());
        g.add_edge(v[1], v[2], ());
        g.add_edge(v[3], v[4], ());
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.largest, 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_ne!(c.labels[5], c.labels[0]);
    }

    #[test]
    fn direction_is_ignored() {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        let a = g.add_vertex(());
        let b = g.add_vertex(());
        g.add_edge(b, a, ());
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g: PropertyGraph<(), ()> = PropertyGraph::new();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest, 0);

        let mut g2: PropertyGraph<(), ()> = PropertyGraph::new();
        g2.add_vertex(());
        g2.add_vertex(());
        let c2 = weakly_connected_components(&g2);
        assert_eq!(c2.count, 2);
        assert_eq!(c2.largest, 1);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.find(0), uf.find(2));
    }
}
