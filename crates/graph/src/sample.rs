//! Graph scale-*down*: random edge sampling and vertex-induced subgraphs.
//!
//! A benchmark needs datasets both larger (the generators) and smaller
//! (debugging, laptop-scale platform runs) than the seed. These samplers
//! shrink a property-graph while keeping vertex/edge data intact, with
//! vertices re-indexed densely.

use crate::graph::{PropertyGraph, VertexId};
use csb_stats::rng::rng_for;
use rand::Rng;
use std::collections::VecDeque;

/// Keeps each edge independently with probability `fraction`; vertices that
/// end up isolated are dropped and ids re-compacted.
///
/// # Panics
/// Panics unless `0 <= fraction <= 1`.
pub fn sample_edges<V: Clone, E: Clone>(
    g: &PropertyGraph<V, E>,
    fraction: f64,
    seed: u64,
) -> PropertyGraph<V, E> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut rng = rng_for(seed, 0x5A);
    let kept: Vec<usize> = (0..g.edge_count()).filter(|_| rng.gen::<f64>() < fraction).collect();
    let mut touched: Vec<bool> = vec![false; g.vertex_count()];
    for &e in &kept {
        let (s, d) = g.endpoints(crate::graph::EdgeId(e));
        touched[s.index()] = true;
        touched[d.index()] = true;
    }
    let mut remap: Vec<u32> = vec![u32::MAX; g.vertex_count()];
    let mut out: PropertyGraph<V, E> = PropertyGraph::new();
    for (v, &t) in touched.iter().enumerate() {
        if t {
            remap[v] = out.add_vertex(g.vertex(VertexId(v as u32)).clone()).0;
        }
    }
    for &e in &kept {
        let id = crate::graph::EdgeId(e);
        let (s, d) = g.endpoints(id);
        out.add_edge(VertexId(remap[s.index()]), VertexId(remap[d.index()]), g.edge(id).clone());
    }
    out
}

/// The subgraph induced by `vertices` (all edges with both endpoints in the
/// set), re-indexed densely in the order given. Duplicate ids are ignored.
pub fn induced_subgraph<V: Clone, E: Clone>(
    g: &PropertyGraph<V, E>,
    vertices: &[VertexId],
) -> PropertyGraph<V, E> {
    let mut remap: Vec<u32> = vec![u32::MAX; g.vertex_count()];
    let mut out: PropertyGraph<V, E> = PropertyGraph::new();
    for &v in vertices {
        if remap[v.index()] == u32::MAX {
            remap[v.index()] = out.add_vertex(g.vertex(v).clone()).0;
        }
    }
    for (id, s, d, data) in g.edges() {
        let (rs, rd) = (remap[s.index()], remap[d.index()]);
        if rs != u32::MAX && rd != u32::MAX {
            out.add_edge(VertexId(rs), VertexId(rd), data.clone());
        }
        let _ = id;
    }
    out
}

/// Snowball (BFS) sample: the induced subgraph of the first
/// `target_vertices` hosts reached from `start`, following edges in either
/// direction — the neighborhood-extraction pattern incident-response tooling
/// uses.
pub fn snowball_sample<V: Clone, E: Clone>(
    g: &PropertyGraph<V, E>,
    start: VertexId,
    target_vertices: usize,
) -> PropertyGraph<V, E> {
    assert!(start.index() < g.vertex_count(), "start vertex out of range");
    // Undirected adjacency for the crawl.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.vertex_count()];
    for (s, d) in g.edge_sources().iter().zip(g.edge_targets().iter()) {
        adj[s.index()].push(d.0);
        adj[d.index()].push(s.0);
    }
    let mut picked: Vec<VertexId> = Vec::with_capacity(target_vertices);
    let mut seen = vec![false; g.vertex_count()];
    let mut queue = VecDeque::from([start.0]);
    seen[start.index()] = true;
    while let Some(v) = queue.pop_front() {
        picked.push(VertexId(v));
        if picked.len() >= target_vertices {
            break;
        }
        for &w in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    induced_subgraph(g, &picked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> PropertyGraph<u32, u32> {
        let mut g = PropertyGraph::new();
        for i in 0..n {
            g.add_vertex(i * 10);
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1), i);
        }
        g
    }

    #[test]
    fn fraction_extremes() {
        let g = chain(20);
        let none = sample_edges(&g, 0.0, 1);
        assert_eq!(none.edge_count(), 0);
        assert_eq!(none.vertex_count(), 0);
        let all = sample_edges(&g, 1.0, 1);
        assert_eq!(all.edge_count(), g.edge_count());
        assert_eq!(all.vertex_count(), g.vertex_count());
        // Data preserved through the remap.
        assert_eq!(*all.vertex(VertexId(3)), 30);
    }

    #[test]
    fn sampled_fraction_is_respected() {
        let g = chain(2000);
        let half = sample_edges(&g, 0.5, 2);
        let kept = half.edge_count() as f64 / g.edge_count() as f64;
        assert!((kept - 0.5).abs() < 0.05, "kept {kept}");
        // No dangling endpoints after remap.
        for (_, s, d, _) in half.edges() {
            assert!(s.index() < half.vertex_count());
            assert!(d.index() < half.vertex_count());
        }
        // Deterministic.
        assert_eq!(sample_edges(&g, 0.5, 2).edge_count(), half.edge_count());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = chain(10);
        let sub = induced_subgraph(&g, &[VertexId(2), VertexId(3), VertexId(4), VertexId(7)]);
        assert_eq!(sub.vertex_count(), 4);
        // Edges 2-3 and 3-4 survive; 7's edges leave the set.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(*sub.vertex(VertexId(0)), 20);
        // Duplicate ids ignored.
        let dup = induced_subgraph(&g, &[VertexId(1), VertexId(1)]);
        assert_eq!(dup.vertex_count(), 1);
    }

    #[test]
    fn snowball_grows_a_connected_neighborhood() {
        let g = chain(100);
        let sub = snowball_sample(&g, VertexId(50), 7);
        assert_eq!(sub.vertex_count(), 7);
        // A chain neighborhood of 7 vertices has 6 internal edges.
        assert_eq!(sub.edge_count(), 6);
        // Requesting more than reachable returns the component.
        let mut island = chain(3);
        island.add_vertex(999);
        let all = snowball_sample(&island, VertexId(0), 10);
        assert_eq!(all.vertex_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn snowball_bad_start_panics() {
        let g = chain(3);
        let _ = snowball_sample(&g, VertexId(99), 2);
    }
}
