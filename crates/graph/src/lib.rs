//! # csb-graph
//!
//! Directed property multigraph substrate and analytics kernels.
//!
//! The paper formalizes a property-graph as `G = (V, E, Dv, De)` where `E` is
//! a *multi-set* (multiple edges between the same vertex pair represent
//! repeated connections between the same hosts) and `Dv`/`De` attach data to
//! vertices and edges. [`PropertyGraph`] implements exactly that, generic
//! over the vertex and edge data types; [`NetflowGraph`] is the instantiation
//! used throughout the suite (vertex = host, edge = NetFlow record).
//!
//! Analytics kernels (the "structural properties" of the paper — in/out
//! degree, PageRank — plus the extensions it names as future work:
//! betweenness centrality, connected components, clustering) live in
//! [`algo`], operating on a [`csr::Csr`] index for cache-friendly traversal
//! and parallelized with rayon.

pub mod algo;
pub mod csr;
pub mod from_flows;
pub mod graph;
pub mod io;
pub mod metric;
pub mod ooc;
pub mod partition;
pub mod properties;
pub mod sample;

pub use csr::Csr;
pub use from_flows::graph_from_flows;
pub use graph::{EdgeId, PropertyGraph, VertexId};
pub use metric::{
    AssortativityMetric, ClusteringMetric, DegreeMetric, GraphMetric, MmdDegreeMetric,
    MmdPagerankMetric, PagerankMetric, SpectralMetric,
};
pub use ooc::{
    degree_counts_ooc, degree_distribution_ooc, pagerank_ooc, DegreeCounts, EdgeScan, GraphScan,
    SliceScan,
};
pub use properties::EdgeProperties;

/// The NetFlow instantiation: vertex data is the host's IPv4 address, edge
/// data is the nine NetFlow attributes of paper Section III.
pub type NetflowGraph = graph::PropertyGraph<u32, properties::EdgeProperties>;
