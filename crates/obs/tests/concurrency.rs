//! Concurrency tests: counter / histogram updates issued from a rayon pool
//! must sum exactly (no lost updates), and exported artifacts over spans
//! recorded from many threads must validate as JSON.

use csb_obs::json::validate_json;
use csb_obs::metrics::{counter, histogram};
use rayon::prelude::*;

/// One process-global collector means one test exercising it end to end:
/// splitting these phases into separate `#[test]`s would race on
/// enable/reset across the harness's test threads.
#[test]
fn concurrent_updates_sum_exactly_and_exports_validate() {
    let _serial = csb_obs::span::test_lock();
    csb_obs::reset();
    csb_obs::enable();

    // Counter and histogram hammered from a parallel iterator: every update
    // must land. Sum over 1..=N has a closed form to check against.
    const N: u64 = 10_000;
    let c = counter("test.concurrency.counter");
    let h = histogram("test.concurrency.histogram");
    (1..=N).into_par_iter().for_each(|v| {
        c.add(v);
        h.record(v);
    });
    let expected_sum = N * (N + 1) / 2;
    assert_eq!(c.get(), expected_sum);
    let hs = h.snapshot();
    assert_eq!(hs.count, N);
    assert_eq!(hs.sum, expected_sum);
    assert_eq!(hs.buckets.iter().sum::<u64>(), N);
    // log2 buckets partition 1..=N: bucket i holds 2^i values (clipped at N).
    assert_eq!(hs.buckets[0], 1, "values {{1}}");
    assert_eq!(hs.buckets[1], 2, "values {{2,3}}");
    assert_eq!(hs.buckets[13], N - 8192 + 1, "values 8192..=N");

    // Spans recorded from the same pool: all flushed, all exported, all
    // valid JSON.
    (0..64u32).into_par_iter().for_each(|_| {
        let _g = csb_obs::span_cat("pool.work", "test");
    });
    csb_obs::disable();
    let spans = csb_obs::flush_spans();
    assert_eq!(spans.len(), 64);

    let trace = csb_obs::export::chrome_trace_json(&spans);
    validate_json(&trace).expect("chrome trace from pooled spans must validate");
    let jsonl = csb_obs::export::events_jsonl(&spans);
    assert_eq!(jsonl.lines().count(), 64);
    for line in jsonl.lines() {
        validate_json(line).expect("every JSONL line must validate");
    }
    let metrics = csb_obs::export::metrics_summary_json(&csb_obs::snapshot_metrics());
    validate_json(&metrics).expect("metrics summary must validate");
    assert!(metrics.contains(&format!("\"test.concurrency.counter\":{expected_sum}")));

    csb_obs::reset();
}

#[test]
fn disabled_span_overhead_is_negligible() {
    // Smoke bound, not a benchmark: a disabled span is one relaxed load and
    // an inert guard, so even debug builds finish 100k of them in well under
    // a generous wall-clock budget.
    let _serial = csb_obs::span::test_lock();
    assert!(!csb_obs::enabled());
    let start = std::time::Instant::now();
    for _ in 0..100_000 {
        let _g = csb_obs::span("disabled.smoke");
        csb_obs::counter_add("disabled.smoke.counter", 1);
    }
    let elapsed = start.elapsed();
    assert!(elapsed.as_millis() < 500, "100k disabled spans took {elapsed:?}");
}
