//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`], plus a strict-enough validator the endpoint smoke
//! checker uses. Counters and gauges map directly; log₂-bucketed histograms
//! are exposed as summaries with `quantile="0.5|0.9|0.99"` sample lines and
//! the exact `_sum` / `_count` pair.
//!
//! Metric names are sanitized into the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every non-alphanumeric byte becomes `_`
//! and everything gets a `csb_` namespace prefix, so `store.bytes_written`
//! exports as `csb_store_bytes_written`.

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps an internal dotted metric name onto the Prometheus grammar.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("csb_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in Prometheus text exposition format. Deterministic:
/// metrics appear in name order within each kind (counters, gauges, then
/// histograms-as-summaries).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for &(name, v) in &snap.counters {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for &(name, v) in &snap.gauges {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, est) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", fmt_f64(est));
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line `name[{labels}] value` and checks each part.
fn check_sample(line: &str) -> Result<String, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label set")?;
            if close < brace {
                return Err("unclosed label set".into());
            }
            let labels = &line[brace + 1..close];
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| format!("bad label {pair:?}"))?;
                if !is_valid_name(k.trim()) {
                    return Err(format!("bad label name {k:?}"));
                }
                let v = v.trim();
                if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                    return Err(format!("label value {v:?} must be quoted"));
                }
            }
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').ok_or("sample without value")?;
            (&line[..sp], &line[sp..])
        }
    };
    if !is_valid_name(name_part) {
        return Err(format!("bad metric name {name_part:?}"));
    }
    let mut fields = rest.split_whitespace();
    let value = fields.next().ok_or("sample without value")?;
    if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
        return Err(format!("bad sample value {value:?}"));
    }
    // An optional trailing timestamp is allowed by the format.
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("bad timestamp {ts:?}"));
        }
    }
    if fields.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    Ok(name_part.to_string())
}

/// Validates Prometheus text exposition: every non-comment line must be a
/// well-formed sample, every sample's base name must have a preceding
/// `# TYPE` declaration (allowing `_sum`/`_count`/`_bucket` suffixes for
/// summary/histogram families), and at least one sample must be present.
/// Errors carry the 1-based line number.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: TYPE without name"))?;
            let kind = parts.next().ok_or(format!("line {lineno}: TYPE without kind"))?;
            if !is_valid_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(format!("line {lineno}: unknown type {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        let name = check_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let base = ["_sum", "_count", "_bucket"]
            .iter()
            .find_map(|suf| line_base(&name, suf, &types))
            .unwrap_or(name.clone());
        if !types.contains_key(&base) {
            return Err(format!("line {lineno}: sample {name} has no TYPE declaration"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    Ok(())
}

fn line_base(name: &str, suffix: &str, types: &BTreeMap<String, String>) -> Option<String> {
    let base = name.strip_suffix(suffix)?;
    types.contains_key(base).then(|| base.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsSnapshot};

    fn sample_snapshot() -> MetricsSnapshot {
        let h = Histogram::default();
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        MetricsSnapshot {
            counters: vec![("attach.edges", 1234), ("store.bytes_written", 99)],
            gauges: vec![("proc.rss_bytes", 5_000_000)],
            histograms: vec![("store.write_micros", h.snapshot())],
        }
    }

    #[test]
    fn renders_sanitized_names_and_families() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE csb_attach_edges counter\ncsb_attach_edges 1234\n"));
        assert!(text.contains("# TYPE csb_proc_rss_bytes gauge\ncsb_proc_rss_bytes 5000000\n"));
        assert!(text.contains("# TYPE csb_store_write_micros summary"));
        assert!(text.contains("csb_store_write_micros{quantile=\"0.5\"}"));
        assert!(text.contains("csb_store_write_micros{quantile=\"0.99\"}"));
        assert!(text.contains("csb_store_write_micros_sum 1500"));
        assert!(text.contains("csb_store_write_micros_count 4"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn rendered_text_validates() {
        validate_prometheus_text(&prometheus_text(&sample_snapshot())).expect("must validate");
    }

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize_name("store.bytes_written"), "csb_store_bytes_written");
        assert_eq!(sanitize_name("a-b/c"), "csb_a_b_c");
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        for (bad, why) in [
            ("", "empty"),
            ("csb_x 1\n", "sample without TYPE"),
            ("# TYPE csb_x counter\n", "no samples"),
            ("# TYPE csb_x widget\ncsb_x 1\n", "unknown type"),
            ("# TYPE csb_x counter\ncsb_x one\n", "bad value"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad name"),
            ("# TYPE csb_x counter\n# TYPE csb_x counter\ncsb_x 1\n", "duplicate TYPE"),
            ("# TYPE csb_x summary\ncsb_x{quantile=0.5} 1\n", "unquoted label"),
        ] {
            assert!(validate_prometheus_text(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_suffixed_summary_samples_and_timestamps() {
        let text = "# HELP csb_s a summary\n# TYPE csb_s summary\n\
                    csb_s{quantile=\"0.5\"} 4.5\ncsb_s_sum 10\ncsb_s_count 2\n\
                    # TYPE csb_t counter\ncsb_t 7 1712345678\n";
        validate_prometheus_text(text).expect("must validate");
    }

    #[test]
    fn quantile_values_are_finite_and_ordered_in_output() {
        let snap = sample_snapshot();
        let (_, h) = &snap.histograms[0];
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
        let text = prometheus_text(&snap);
        for line in text.lines().filter(|l| l.contains("quantile=")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v.is_finite() && v > 0.0, "{line}");
        }
    }
}
