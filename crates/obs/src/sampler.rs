//! Background resource sampler: a thread that periodically reads
//! `/proc/self/status` (RSS, thread count) and `/proc/self/io` (bytes
//! actually read/written through syscalls), derives an edge-throughput
//! gauge from store-counter deltas, publishes everything as gauges on a
//! recorder, and keeps the raw timestamped series for post-run analysis
//! (the bench binaries stamp the peaks into their BENCH_*.json).
//!
//! On platforms without procfs the samples simply carry zeros — the sampler
//! never fails, it just has less to say.

use crate::recorder::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One observation of the process, timestamped on the trace-epoch clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sample {
    /// Microseconds since the trace epoch.
    pub at_micros: u64,
    /// Resident set size, bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// OS threads in the process.
    pub threads: u64,
    /// Bytes fetched from the storage layer (`read_bytes`).
    pub io_read_bytes: u64,
    /// Bytes sent to the storage layer (`write_bytes`).
    pub io_write_bytes: u64,
    /// Edge records materialized so far (store counter, falling back to
    /// `attach.edges` for in-memory runs).
    pub edge_records: u64,
    /// Edge throughput since the previous sample, edges per second.
    pub edges_per_sec: f64,
}

/// Largest RSS seen across `samples` (0 when empty or procfs-less).
pub fn peak_rss_bytes(samples: &[Sample]) -> u64 {
    samples.iter().map(|s| s.rss_bytes).max().unwrap_or(0)
}

/// `VmRSS` (bytes) and `Threads` from `/proc/self/status` text.
fn parse_proc_status(text: &str) -> (Option<u64>, Option<u64>) {
    let mut rss = None;
    let mut threads = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok().map(|kb| kb * 1024);
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse::<u64>().ok();
        }
    }
    (rss, threads)
}

/// `read_bytes` and `write_bytes` from `/proc/self/io` text.
fn parse_proc_io(text: &str) -> (Option<u64>, Option<u64>) {
    let mut rd = None;
    let mut wr = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("read_bytes:") {
            rd = rest.trim().parse::<u64>().ok();
        } else if let Some(rest) = line.strip_prefix("write_bytes:") {
            wr = rest.trim().parse::<u64>().ok();
        }
    }
    (rd, wr)
}

/// A running sampler thread. Create with [`Sampler::start`]; [`Sampler::stop`]
/// takes a final sample, joins the thread, and returns the whole series.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Vec<Sample>>,
}

impl Sampler {
    /// Spawns the sampling thread at `period` cadence against `recorder`.
    /// Gauges published: `proc.rss_bytes`, `proc.rss_peak_bytes`,
    /// `proc.threads`, `proc.io_read_bytes`, `proc.io_write_bytes`,
    /// `gen.edges_per_sec`.
    pub fn start(recorder: Recorder, period: Duration) -> Sampler {
        crate::span::epoch();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("csb-obs-sampler".into())
            .spawn(move || run(recorder, period, stop_in))
            .expect("spawn sampler thread");
        Sampler { stop, handle }
    }

    /// Stops the thread (after one final sample) and returns the series.
    pub fn stop(self) -> Vec<Sample> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or_default()
    }
}

fn run(recorder: Recorder, period: Duration, stop: Arc<AtomicBool>) -> Vec<Sample> {
    let g_rss = recorder.gauge("proc.rss_bytes");
    let g_rss_peak = recorder.gauge("proc.rss_peak_bytes");
    let g_threads = recorder.gauge("proc.threads");
    let g_rd = recorder.gauge("proc.io_read_bytes");
    let g_wr = recorder.gauge("proc.io_write_bytes");
    let g_eps = recorder.gauge("gen.edges_per_sec");
    let c_store = recorder.counter("store.edge_records_written");
    let c_attach = recorder.counter("attach.edges");

    let mut series: Vec<Sample> = Vec::new();
    let mut peak = 0u64;
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        let (rss, threads) =
            parse_proc_status(&std::fs::read_to_string("/proc/self/status").unwrap_or_default());
        let (rd, wr) = parse_proc_io(&std::fs::read_to_string("/proc/self/io").unwrap_or_default());
        let store_records = c_store.get();
        let edge_records = if store_records > 0 { store_records } else { c_attach.get() };
        let at_micros = crate::span::now_micros();
        let edges_per_sec = match series.last() {
            Some(prev) if at_micros > prev.at_micros => {
                (edge_records.saturating_sub(prev.edge_records)) as f64
                    / ((at_micros - prev.at_micros) as f64 / 1e6)
            }
            _ => 0.0,
        };
        let sample = Sample {
            at_micros,
            rss_bytes: rss.unwrap_or(0),
            threads: threads.unwrap_or(0),
            io_read_bytes: rd.unwrap_or(0),
            io_write_bytes: wr.unwrap_or(0),
            edge_records,
            edges_per_sec,
        };
        peak = peak.max(sample.rss_bytes);
        g_rss.set(sample.rss_bytes as i64);
        g_rss_peak.set(peak as i64);
        g_threads.set(sample.threads as i64);
        g_rd.set(sample.io_read_bytes as i64);
        g_wr.set(sample.io_write_bytes as i64);
        g_eps.set(sample.edges_per_sec as i64);
        series.push(sample);
        if stopping {
            return series;
        }
        // Sleep in small slices so stop() returns promptly even at a
        // multi-second cadence.
        let mut slept = Duration::ZERO;
        while slept < period && !stop.load(Ordering::Relaxed) {
            let slice = Duration::from_millis(20).min(period - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_fields() {
        let text = "Name:\tcsb\nVmPeak:\t  200000 kB\nVmRSS:\t   12345 kB\nThreads:\t7\n";
        let (rss, threads) = parse_proc_status(text);
        assert_eq!(rss, Some(12345 * 1024));
        assert_eq!(threads, Some(7));
    }

    #[test]
    fn parses_proc_io_fields() {
        let text = "rchar: 99\nwchar: 88\nread_bytes: 4096\nwrite_bytes: 8192\n";
        let (rd, wr) = parse_proc_io(text);
        assert_eq!(rd, Some(4096));
        assert_eq!(wr, Some(8192));
    }

    #[test]
    fn missing_fields_parse_to_none() {
        assert_eq!(parse_proc_status(""), (None, None));
        assert_eq!(parse_proc_io("garbage\n"), (None, None));
        assert_eq!(parse_proc_status("VmRSS:\tnot-a-number kB\n").0, None);
    }

    #[test]
    fn sampler_collects_a_series_and_publishes_gauges() {
        let rec = Recorder::new();
        let c = rec.counter("store.edge_records_written");
        let sampler = Sampler::start(rec.clone(), Duration::from_millis(10));
        c.add(50_000);
        std::thread::sleep(Duration::from_millis(60));
        let series = sampler.stop();
        assert!(series.len() >= 2, "expected several samples, got {}", series.len());
        assert!(series.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        let snap = rec.snapshot_metrics();
        assert!(snap.gauge("proc.rss_bytes").is_some());
        assert!(snap.gauge("gen.edges_per_sec").is_some());
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes(&series) > 0, "procfs must yield an RSS on linux");
            assert!(snap.gauge("proc.threads").unwrap() >= 1);
        }
        // The counter bump shows up in the series and the throughput gauge.
        assert_eq!(series.last().unwrap().edge_records, 50_000);
        assert!(series.iter().any(|s| s.edges_per_sec > 0.0));
    }

    #[test]
    fn stop_returns_promptly_despite_long_period() {
        let rec = Recorder::new();
        let sampler = Sampler::start(rec, Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        let series = sampler.stop();
        assert!(t0.elapsed() < Duration::from_secs(2), "stop must not wait out the period");
        assert!(!series.is_empty());
    }
}
