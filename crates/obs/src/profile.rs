//! Span-profile aggregation: folds a flat span list (as exported to Chrome
//! trace JSON or the JSONL event stream) into a per-phase table of count,
//! total time, and *self* time — total minus the time spent inside child
//! spans on the same thread — so `csb obs report trace.json` answers "where
//! did the run actually go" without eyeballing a raw trace.

use crate::json::{parse_json, JsonValue};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A span as read back from a trace file (names owned, unlike
/// [`crate::SpanRecord`] whose names are `&'static str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSpan {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Start offset, microseconds.
    pub start_micros: u64,
    /// Duration, microseconds.
    pub dur_micros: u64,
    /// Thread id.
    pub thread: u64,
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Span name.
    pub name: String,
    /// Category (of the first occurrence).
    pub cat: String,
    /// Occurrences.
    pub count: u64,
    /// Sum of wall-clock durations, microseconds.
    pub total_micros: u64,
    /// Sum of self time (duration minus same-thread children), microseconds.
    pub self_micros: u64,
}

/// A whole profile: per-name rows plus run-level aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Rows sorted by self time, descending.
    pub phases: Vec<PhaseStats>,
    /// Last span end minus first span start, microseconds.
    pub wall_micros: u64,
    /// Sum of all self times (can exceed wall on multi-threaded runs).
    pub self_sum_micros: u64,
    /// Spans profiled.
    pub span_count: u64,
    /// Distinct threads seen.
    pub threads: u64,
}

/// Computes per-name total/self times. Self time assumes the spans on one
/// thread nest properly (RAII guards guarantee that at capture time);
/// overlap is clipped to the parent, so malformed input degrades gracefully
/// instead of going negative.
pub fn profile(spans: &[OwnedSpan]) -> Profile {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    // Within a thread: by start, and for equal starts the longer span is
    // the parent, so it must come first.
    order.sort_by_key(|&i| (spans[i].thread, spans[i].start_micros, Reverse(spans[i].dur_micros)));
    let mut self_micros: Vec<i64> = spans.iter().map(|s| s.dur_micros as i64).collect();
    let mut stack: Vec<usize> = Vec::new();
    let mut cur_thread = None;
    let end = |i: usize| spans[i].start_micros + spans[i].dur_micros;
    for &i in &order {
        if cur_thread != Some(spans[i].thread) {
            cur_thread = Some(spans[i].thread);
            stack.clear();
        }
        while let Some(&top) = stack.last() {
            if end(top) <= spans[i].start_micros {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            let overlap = end(i).min(end(parent)).saturating_sub(spans[i].start_micros);
            self_micros[parent] -= overlap as i64;
        }
        stack.push(i);
    }
    let mut by_name: BTreeMap<&str, PhaseStats> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let row = by_name.entry(&s.name).or_insert_with(|| PhaseStats {
            name: s.name.clone(),
            cat: s.cat.clone(),
            count: 0,
            total_micros: 0,
            self_micros: 0,
        });
        row.count += 1;
        row.total_micros += s.dur_micros;
        row.self_micros += self_micros[i].max(0) as u64;
    }
    let mut phases: Vec<PhaseStats> = by_name.into_values().collect();
    phases.sort_by_key(|p| (Reverse(p.self_micros), p.name.clone()));
    let wall_micros = match (
        spans.iter().map(|s| s.start_micros).min(),
        spans.iter().map(|s| s.start_micros + s.dur_micros).max(),
    ) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0,
    };
    Profile {
        self_sum_micros: phases.iter().map(|p| p.self_micros).sum(),
        span_count: spans.len() as u64,
        threads: {
            let mut t: Vec<u64> = spans.iter().map(|s| s.thread).collect();
            t.sort_unstable();
            t.dedup();
            t.len() as u64
        },
        phases,
        wall_micros,
    }
}

fn span_from_fields(
    v: &JsonValue,
    name_key: &str,
    start_key: &str,
    dur_key: &str,
    tid_key: &str,
) -> Option<OwnedSpan> {
    Some(OwnedSpan {
        name: v.get(name_key)?.as_str()?.to_string(),
        cat: v.get("cat").and_then(JsonValue::as_str).unwrap_or("").to_string(),
        start_micros: v.get(start_key)?.as_u64()?,
        dur_micros: v.get(dur_key)?.as_u64()?,
        thread: v.get(tid_key).and_then(JsonValue::as_u64).unwrap_or(0),
    })
}

/// Loads spans from trace text: either Chrome trace JSON (an object with a
/// `traceEvents` array, or a bare event array — only `ph:"X"` complete
/// events are read) or the JSONL event stream (`"event":"span"` lines).
/// Format is auto-detected from the first non-space byte and line count.
pub fn parse_trace(text: &str) -> Result<Vec<OwnedSpan>, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("empty trace".into());
    }
    // A single JSON document spanning the whole input = Chrome trace; a
    // lone `{"event":"span",...}` object falls through to the JSONL path.
    if let Ok(doc) = parse_json(trimmed) {
        let events = match &doc {
            JsonValue::Obj(_) if doc.get("traceEvents").is_some() => Some(
                doc.get("traceEvents")
                    .and_then(JsonValue::as_arr)
                    .ok_or("traceEvents must be an array")?,
            ),
            JsonValue::Arr(items) => Some(items.as_slice()),
            _ => None,
        };
        if let Some(events) = events {
            return Ok(events
                .iter()
                .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
                .filter_map(|e| span_from_fields(e, "name", "ts", "dur", "tid"))
                .collect());
        }
    }
    let mut spans = Vec::new();
    for (i, line) in trimmed.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("event").and_then(JsonValue::as_str) != Some("span") {
            continue;
        }
        spans.extend(span_from_fields(&v, "name", "start_micros", "dur_micros", "thread"));
    }
    if spans.is_empty() {
        return Err("no span events found in trace".into());
    }
    Ok(spans)
}

fn fmt_ms(micros: u64) -> String {
    format!("{:.3}", micros as f64 / 1000.0)
}

/// Renders the profile as an aligned text table, largest self time first,
/// truncated to `top` rows (0 = all), with a wall-clock coverage footer.
pub fn render_report(p: &Profile, top: usize) -> String {
    let shown: &[PhaseStats] =
        if top == 0 || top >= p.phases.len() { &p.phases } else { &p.phases[..top] };
    let name_w = shown.iter().map(|r| r.name.len()).chain([4]).max().unwrap().min(48);
    let cat_w = shown.iter().map(|r| r.cat.len()).chain([3]).max().unwrap().min(12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "span profile — {} spans on {} thread{}, wall {} ms",
        p.span_count,
        p.threads,
        if p.threads == 1 { "" } else { "s" },
        fmt_ms(p.wall_micros)
    );
    let _ = writeln!(
        out,
        "{:<name_w$}  {:<cat_w$}  {:>8}  {:>12}  {:>12}  {:>6}",
        "NAME", "CAT", "COUNT", "TOTAL(ms)", "SELF(ms)", "SELF%"
    );
    for r in shown {
        let pct = if p.wall_micros > 0 {
            100.0 * r.self_micros as f64 / p.wall_micros as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<cat_w$}  {:>8}  {:>12}  {:>12}  {:>5.1}%",
            &r.name[..r.name.len().min(48)],
            &r.cat[..r.cat.len().min(12)],
            r.count,
            fmt_ms(r.total_micros),
            fmt_ms(r.self_micros),
            pct
        );
    }
    if shown.len() < p.phases.len() {
        let _ = writeln!(out, "… and {} more span name(s)", p.phases.len() - shown.len());
    }
    let coverage = if p.wall_micros > 0 {
        100.0 * p.self_sum_micros as f64 / p.wall_micros as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "self-time total: {} ms ({coverage:.1}% of wall-clock)",
        fmt_ms(p.self_sum_micros)
    );
    out
}

/// Extracts the top `n` counters (by value, descending) from a metrics
/// summary JSON document, as written by `generate --metrics-out`.
pub fn top_counters_from_summary(json: &str, n: usize) -> Result<Vec<(String, u64)>, String> {
    let doc = parse_json(json)?;
    let counters = match doc.get("counters") {
        Some(JsonValue::Obj(fields)) => fields,
        _ => return Err("summary has no counters object".into()),
    };
    let mut rows: Vec<(String, u64)> =
        counters.iter().filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n))).collect();
    rows.sort_by_key(|(name, v)| (Reverse(*v), name.clone()));
    rows.truncate(n);
    Ok(rows)
}

/// Renders the top-counter rows as an aligned table.
pub fn render_top_counters(rows: &[(String, u64)]) -> String {
    let name_w = rows.iter().map(|(n, _)| n.len()).chain([7]).max().unwrap().min(48);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_w$}  {:>14}", "COUNTER", "VALUE");
    for (name, v) in rows {
        let _ = writeln!(out, "{:<name_w$}  {:>14}", &name[..name.len().min(48)], v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str, start: u64, dur: u64, thread: u64) -> OwnedSpan {
        OwnedSpan {
            name: name.to_string(),
            cat: "t".to_string(),
            start_micros: start,
            dur_micros: dur,
            thread,
        }
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        // parent [0,100) with children [10,30) and [40,90); grandchild [50,60).
        let spans = vec![
            s("parent", 0, 100, 1),
            s("child", 10, 20, 1),
            s("child", 40, 50, 1),
            s("grand", 50, 10, 1),
        ];
        let p = profile(&spans);
        let get = |n: &str| p.phases.iter().find(|r| r.name == n).unwrap().clone();
        assert_eq!(get("parent").self_micros, 100 - 20 - 50);
        assert_eq!(get("child").self_micros, 20 + 50 - 10);
        assert_eq!(get("grand").self_micros, 10);
        assert_eq!(p.wall_micros, 100);
        // Proper nesting: self times partition the covered wall-clock.
        assert_eq!(p.self_sum_micros, 100);
        assert_eq!(p.span_count, 4);
    }

    #[test]
    fn threads_do_not_shadow_each_other() {
        let spans = vec![s("a", 0, 100, 1), s("b", 10, 50, 2)];
        let p = profile(&spans);
        // Different threads: b is NOT a child of a.
        assert!(p.phases.iter().all(|r| r.self_micros == r.total_micros));
        assert_eq!(p.threads, 2);
        assert_eq!(p.self_sum_micros, 150);
    }

    #[test]
    fn equal_start_longer_span_is_the_parent() {
        let spans = vec![s("outer", 0, 100, 1), s("inner", 0, 40, 1)];
        let p = profile(&spans);
        let outer = p.phases.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.self_micros, 60);
    }

    #[test]
    fn parses_chrome_trace_round_trip() {
        let recs = vec![
            crate::SpanRecord {
                name: "grow",
                cat: "gen",
                start_micros: 0,
                dur_micros: 50,
                thread: 0,
            },
            crate::SpanRecord {
                name: "attach.chunk",
                cat: "gen",
                start_micros: 10,
                dur_micros: 20,
                thread: 0,
            },
        ];
        let json = crate::export::chrome_trace_json(&recs);
        let spans = parse_trace(&json).expect("chrome trace parses");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "grow");
        assert_eq!(spans[1].start_micros, 10);
        assert_eq!(spans[1].cat, "gen");
    }

    #[test]
    fn parses_jsonl_round_trip() {
        let recs = vec![crate::SpanRecord {
            name: "veracity.pagerank",
            cat: "veracity",
            start_micros: 5,
            dur_micros: 7,
            thread: 3,
        }];
        let jsonl = crate::export::events_jsonl(&recs);
        let spans = parse_trace(&jsonl).expect("jsonl parses");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].thread, 3);
        assert_eq!(spans[0].dur_micros, 7);
    }

    #[test]
    fn parse_trace_rejects_garbage() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("not json at all").is_err());
        assert!(parse_trace("{\"noTraceEvents\":[]}").is_err(), "no span events anywhere");
    }

    #[test]
    fn single_line_jsonl_still_parses() {
        let line = "{\"event\":\"span\",\"name\":\"solo\",\"cat\":\"t\",\
                    \"start_micros\":1,\"dur_micros\":2,\"thread\":0}";
        let spans = parse_trace(line).expect("one-line jsonl parses");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "solo");
    }

    #[test]
    fn report_mentions_phases_and_coverage() {
        let spans = vec![s("grow", 0, 1000, 0), s("attach", 1000, 3000, 0)];
        let report = render_report(&profile(&spans), 0);
        assert!(report.contains("grow"));
        assert!(report.contains("attach"));
        assert!(report.contains("wall 4.000 ms"));
        assert!(report.contains("(100.0% of wall-clock)"), "{report}");
    }

    #[test]
    fn report_truncates_to_top_n() {
        let spans: Vec<OwnedSpan> =
            (0..10).map(|i| s(&format!("phase{i}"), i * 10, 5, 0)).collect();
        let report = render_report(&profile(&spans), 3);
        assert!(report.contains("… and 7 more"));
    }

    #[test]
    fn top_counters_sorted_descending() {
        let json = "{\"counters\":{\"a\":5,\"b\":50,\"c\":7},\"gauges\":{},\"histograms\":{}}";
        let rows = top_counters_from_summary(json, 2).unwrap();
        assert_eq!(rows, vec![("b".to_string(), 50), ("c".to_string(), 7)]);
        let table = render_top_counters(&rows);
        assert!(table.contains("b") && table.contains("50"));
    }
}
