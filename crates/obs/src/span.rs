//! Scoped spans: RAII guards that record name, category, start offset,
//! duration, and thread id into a thread-local buffer. Buffers register
//! themselves with a global sink on first use, so [`flush_spans`] can drain
//! every thread's records without any per-span cross-thread traffic.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`"pgpba.grow"`, `"attach.chunk"`, ...).
    pub name: &'static str,
    /// Category — the crate or subsystem (`"gen"`, `"engine"`, `"net"`).
    pub cat: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_micros: u64,
    /// Wall-clock duration, microseconds.
    pub dur_micros: u64,
    /// Dense per-process thread id (assigned in first-use order).
    pub thread: u64,
}

/// The trace epoch: timestamp zero for every span. Pinned by the first
/// [`crate::enable`] (or first span, whichever comes first).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Registry of every thread's span buffer.
static SINK: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>> = Mutex::new(Vec::new());

/// Next dense thread id.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: (Arc<Mutex<Vec<SpanRecord>>>, u64) = {
        let buf = Arc::new(Mutex::new(Vec::new()));
        SINK.lock().push(Arc::clone(&buf));
        (buf, NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    };
}

/// RAII span guard: records on drop. A disabled collector yields an inert
/// guard whose construction and drop are both branch-on-a-relaxed-load cheap.
#[must_use = "a span measures the scope it is bound to; an unbound guard drops immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(&'static str, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, start)) = self.live.take() {
            let dur_micros = start.elapsed().as_micros() as u64;
            let start_micros = start.duration_since(epoch()).as_micros() as u64;
            LOCAL.with(|(buf, tid)| {
                buf.lock().push(SpanRecord { name, cat, start_micros, dur_micros, thread: *tid });
            });
        }
    }
}

/// Opens a span in the default `"csb"` category.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "csb")
}

/// Opens a span with an explicit category (the Chrome trace `cat` field,
/// which Perfetto uses for filtering).
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    if crate::enabled() {
        SpanGuard { live: Some((name, cat, Instant::now())) }
    } else {
        SpanGuard { live: None }
    }
}

/// Drains every thread's buffered spans, sorted by start time. Spans from
/// threads that have exited are still drained: the sink keeps each buffer
/// alive independently of its thread.
pub fn flush_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for buf in SINK.lock().iter() {
        out.append(&mut buf.lock());
    }
    out.sort_by_key(|s| (s.start_micros, s.thread));
    out
}

/// Discards all buffered spans.
pub(crate) fn clear() {
    for buf in SINK.lock().iter() {
        buf.lock().clear();
    }
}

/// Serializes tests that toggle the process-global collector.
pub fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_order() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        {
            let _outer = span_cat("outer", "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span_cat("inner", "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::disable();
        let spans = flush_spans();
        assert_eq!(spans.len(), 2);
        // Sorted by start: outer opened first.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].dur_micros >= spans[1].dur_micros);
        assert!(spans[1].start_micros >= spans[0].start_micros);
        crate::reset();
    }

    #[test]
    fn spans_from_other_threads_are_flushed() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::disable();
        let spans = flush_spans();
        assert_eq!(spans.len(), 4);
        let tids: std::collections::HashSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(tids.len(), 4, "each worker thread gets its own id");
        crate::reset();
    }

    #[test]
    fn flush_drains() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        {
            let _g = span("drained");
        }
        crate::disable();
        assert_eq!(flush_spans().len(), 1);
        assert!(flush_spans().is_empty(), "flush must drain");
        crate::reset();
    }
}
