//! Scoped spans: RAII guards that record name, category, start offset,
//! duration, and thread id into a thread-local buffer. Each thread keeps one
//! buffer per recorder it has recorded into; buffers register themselves
//! with the owning recorder on first use, so a flush can drain every
//! thread's records without any per-span cross-thread traffic. When a thread
//! exits, its buffers flush into the recorder and deregister — spans from
//! short-lived worker threads survive, and the live-buffer list stays
//! bounded by the number of *running* threads.

use crate::recorder::Recorder;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`"pgpba.grow"`, `"attach.chunk"`, ...).
    pub name: &'static str,
    /// Category — the crate or subsystem (`"gen"`, `"engine"`, `"net"`).
    pub cat: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_micros: u64,
    /// Wall-clock duration, microseconds.
    pub dur_micros: u64,
    /// Dense per-process thread id (assigned in first-use order).
    pub thread: u64,
}

/// The trace epoch: timestamp zero for every span. Pinned by the first
/// [`crate::enable`] (or first span, whichever comes first).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch — the shared clock for spans, the
/// sampler's series, and the status board.
pub(crate) fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Next dense thread id.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// This thread's buffer into one recorder. Dropping (at thread exit) flushes
/// the remaining spans into the recorder and deregisters the buffer.
struct LocalBuf {
    rec: Recorder,
    buf: Arc<Mutex<Vec<SpanRecord>>>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.rec.adopt_thread_buffer(&self.buf);
    }
}

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// One entry per recorder this thread has recorded into (almost always
    /// one); linear scan beats a map at that size.
    static LOCAL: RefCell<Vec<LocalBuf>> = const { RefCell::new(Vec::new()) };
}

fn push_record(rec: &Recorder, record: SpanRecord) {
    let pushed = LOCAL.try_with(|cell| {
        let mut bufs = cell.borrow_mut();
        match bufs.iter().find(|lb| lb.rec.id() == rec.id()) {
            Some(lb) => lb.buf.lock().push(record.clone()),
            None => {
                let buf = Arc::new(Mutex::new(vec![record.clone()]));
                rec.register_live_buffer(&buf);
                bufs.push(LocalBuf { rec: rec.clone(), buf });
            }
        }
    });
    if pushed.is_err() {
        // Thread-local storage already torn down (a span dropped during
        // thread exit): hand the record straight to the recorder.
        rec.push_completed(record);
    }
}

/// RAII span guard: records on drop. A disabled collector yields an inert
/// guard whose construction and drop are both branch-on-a-relaxed-load cheap.
#[must_use = "a span measures the scope it is bound to; an unbound guard drops immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(&'static str, &'static str, Instant, Recorder)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, start, rec)) = self.live.take() {
            let dur_micros = start.elapsed().as_micros() as u64;
            let start_micros = start.duration_since(epoch()).as_micros() as u64;
            let thread = THREAD_ID.try_with(|t| *t).unwrap_or(u64::MAX);
            push_record(&rec, SpanRecord { name, cat, start_micros, dur_micros, thread });
        }
    }
}

/// Opens a span in the default `"csb"` category.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "csb")
}

/// Opens a span with an explicit category (the Chrome trace `cat` field,
/// which Perfetto uses for filtering). The span binds to the recorder that
/// is current when it *opens*.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    match crate::recorder::recording() {
        Some(rec) => SpanGuard { live: Some((name, cat, Instant::now(), rec)) },
        None => SpanGuard { live: None },
    }
}

/// Drains every buffered span of the current recorder (the global default
/// when no scope is installed), sorted by start time. Spans from threads
/// that have exited were flushed into the recorder at thread exit and are
/// included.
pub fn flush_spans() -> Vec<SpanRecord> {
    crate::recorder::current().flush_spans()
}

/// Serializes tests that toggle the process-global collector.
pub fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_order() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        {
            let _outer = span_cat("outer", "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span_cat("inner", "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::disable();
        let spans = flush_spans();
        assert_eq!(spans.len(), 2);
        // Sorted by start: outer opened first.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].dur_micros >= spans[1].dur_micros);
        assert!(spans[1].start_micros >= spans[0].start_micros);
        crate::reset();
    }

    #[test]
    fn spans_from_other_threads_are_flushed() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::disable();
        let spans = flush_spans();
        assert_eq!(spans.len(), 4);
        let tids: std::collections::HashSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(tids.len(), 4, "each worker thread gets its own id");
        crate::reset();
    }

    #[test]
    fn flush_drains() {
        let _l = test_lock();
        crate::reset();
        crate::enable();
        {
            let _g = span("drained");
        }
        crate::disable();
        assert_eq!(flush_spans().len(), 1);
        assert!(flush_spans().is_empty(), "flush must drain");
        crate::reset();
    }

    #[test]
    fn global_live_buffers_do_not_leak_across_thread_exits() {
        // Regression for span loss / buffer leak on worker-thread exit: the
        // global recorder's live list must not grow by one per dead thread.
        let _l = test_lock();
        crate::reset();
        crate::enable();
        let before = crate::Recorder::global().live_span_buffers();
        for _ in 0..16 {
            std::thread::spawn(|| {
                let _g = span("short.lived");
            })
            .join()
            .unwrap();
        }
        assert_eq!(crate::Recorder::global().live_span_buffers(), before);
        crate::disable();
        assert_eq!(flush_spans().len(), 16, "spans outlive their threads");
        crate::reset();
    }
}
