//! Exporters over flushed spans and metric snapshots:
//!
//! * [`chrome_trace_json`] — Chrome trace-event format (`ph:"X"` complete
//!   events), loadable in Perfetto (<https://ui.perfetto.dev>) and
//!   `chrome://tracing`.
//! * [`events_jsonl`] — one JSON object per line per span, for `jq`-style
//!   stream processing.
//! * [`metrics_summary_json`] — the whole metrics registry as one JSON
//!   object.

use crate::json::{array_of, JsonObject};
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use std::io::Write;

fn span_object(s: &SpanRecord) -> JsonObject {
    let mut o = JsonObject::new();
    o.str("name", s.name)
        .str("cat", s.cat)
        .str("ph", "X")
        .u64("ts", s.start_micros)
        .u64("dur", s.dur_micros)
        .u64("pid", 1)
        .u64("tid", s.thread);
    o
}

/// Serializes spans in Chrome trace-event JSON (the object form, with a
/// `traceEvents` array of complete events and a microsecond display unit).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let events = array_of(spans.iter().map(|s| span_object(s).finish()));
    let mut root = JsonObject::new();
    root.raw("traceEvents", &events).str("displayTimeUnit", "ms");
    root.finish()
}

/// Serializes spans as one JSON object per line (JSONL). Each line validates
/// independently; the stream ends with a trailing newline when non-empty.
pub fn events_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let mut o = JsonObject::new();
        o.str("event", "span")
            .str("name", s.name)
            .str("cat", s.cat)
            .u64("start_micros", s.start_micros)
            .u64("dur_micros", s.dur_micros)
            .u64("thread", s.thread);
        out.push_str(&o.finish());
        out.push('\n');
    }
    out
}

/// Serializes a metrics snapshot as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,p50,p90,p99,buckets}}}`.
/// Histogram buckets serialize sparsely as `[[bucket_index, count], ...]`;
/// the quantiles are log₂-bucket interpolated estimates
/// (see [`crate::metrics::HistogramSnapshot::quantile`]).
pub fn metrics_summary_json(snap: &MetricsSnapshot) -> String {
    let mut counters = JsonObject::new();
    for &(name, v) in &snap.counters {
        counters.u64(name, v);
    }
    let mut gauges = JsonObject::new();
    for &(name, v) in &snap.gauges {
        gauges.i64(name, v);
    }
    let mut histograms = JsonObject::new();
    for (name, h) in &snap.histograms {
        let buckets = array_of(
            h.buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| format!("[{i},{c}]")),
        );
        let mut o = JsonObject::new();
        o.u64("count", h.count)
            .u64("sum", h.sum)
            .f64("mean", h.mean(), 3)
            .f64("p50", h.p50(), 3)
            .f64("p90", h.p90(), 3)
            .f64("p99", h.p99(), 3)
            .raw("log2_buckets", &buckets);
        histograms.raw(name, &o.finish());
    }
    let mut root = JsonObject::new();
    root.raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish());
    root.finish()
}

/// Streams the Chrome trace for `spans` into `w`, one event at a time.
///
/// Identical output to [`chrome_trace_json`], but incremental: a failure on
/// the underlying writer (full disk, closed pipe) surfaces as `Err` at the
/// event where it happened instead of after the whole document was built.
pub fn write_chrome_trace_to<W: Write>(mut w: W, spans: &[SpanRecord]) -> std::io::Result<()> {
    w.write_all(b"{\"traceEvents\":[")?;
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        w.write_all(span_object(s).finish().as_bytes())?;
    }
    w.write_all(b"],\"displayTimeUnit\":\"ms\"}")?;
    w.flush()
}

/// Streams the metrics summary for `snap` into `w`. Same output as
/// [`metrics_summary_json`], with the same error behavior as
/// [`write_chrome_trace_to`].
pub fn write_metrics_summary_to<W: Write>(mut w: W, snap: &MetricsSnapshot) -> std::io::Result<()> {
    w.write_all(metrics_summary_json(snap).as_bytes())?;
    w.flush()
}

/// Flushes buffered spans and writes the Chrome trace to `path`.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_chrome_trace_to(std::io::BufWriter::new(file), &crate::flush_spans())
}

/// Snapshots the registry and writes the metrics summary to `path`.
pub fn write_metrics_summary(path: &str) -> std::io::Result<()> {
    write_metrics_summary_to(std::fs::File::create(path)?, &crate::snapshot_metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::metrics::HistogramSnapshot;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord { name: "grow", cat: "gen", start_micros: 0, dur_micros: 120, thread: 0 },
            SpanRecord {
                name: "attach.chunk",
                cat: "gen",
                start_micros: 40,
                dur_micros: 10,
                thread: 3,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let s = chrome_trace_json(&sample_spans());
        validate_json(&s).expect("chrome trace must validate");
        assert!(s.contains("\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"grow\""));
        assert!(s.contains("\"tid\":3"));
    }

    #[test]
    fn empty_trace_still_validates() {
        let s = chrome_trace_json(&[]);
        validate_json(&s).unwrap();
        assert!(s.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn jsonl_lines_validate_independently() {
        let out = events_jsonl(&sample_spans());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).expect("each JSONL line must validate");
        }
        assert!(out.ends_with('\n'));
        assert!(events_jsonl(&[]).is_empty());
    }

    /// Writer that accepts `capacity` bytes and then fails, like a disk
    /// filling up partway through an export.
    struct FullDisk {
        capacity: usize,
        written: Vec<u8>,
    }

    impl Write for FullDisk {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written.len() + buf.len() > self.capacity {
                return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "disk full"));
            }
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streamed_trace_matches_the_string_exporter() {
        let spans = sample_spans();
        let mut buf = Vec::new();
        write_chrome_trace_to(&mut buf, &spans).expect("write to Vec");
        assert_eq!(String::from_utf8(buf).unwrap(), chrome_trace_json(&spans));

        let mut empty = Vec::new();
        write_chrome_trace_to(&mut empty, &[]).expect("write empty trace");
        assert_eq!(String::from_utf8(empty).unwrap(), chrome_trace_json(&[]));
    }

    #[test]
    fn exporters_report_write_failures_instead_of_panicking() {
        let spans = sample_spans();
        for capacity in [0, 10, 40] {
            let err = write_chrome_trace_to(FullDisk { capacity, written: Vec::new() }, &spans)
                .expect_err("short writer must error");
            assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        }
        let snap =
            MetricsSnapshot { counters: vec![("edges", 100)], gauges: vec![], histograms: vec![] };
        let err = write_metrics_summary_to(FullDisk { capacity: 4, written: Vec::new() }, &snap)
            .expect_err("short writer must error");
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }

    #[test]
    fn streamed_metrics_summary_matches_the_string_exporter() {
        let snap = MetricsSnapshot {
            counters: vec![("edges", 100)],
            gauges: vec![("depth", -2)],
            histograms: vec![],
        };
        let mut buf = Vec::new();
        write_metrics_summary_to(&mut buf, &snap).expect("write to Vec");
        assert_eq!(String::from_utf8(buf).unwrap(), metrics_summary_json(&snap));
    }

    #[test]
    fn metrics_summary_shape() {
        let mut h = HistogramSnapshot {
            buckets: [0; crate::metrics::HISTOGRAM_BUCKETS],
            count: 3,
            sum: 1027,
        };
        h.buckets[0] = 2;
        h.buckets[10] = 1;
        let snap = MetricsSnapshot {
            counters: vec![("edges", 100)],
            gauges: vec![("depth", -2)],
            histograms: vec![("latency", h)],
        };
        let s = metrics_summary_json(&snap);
        validate_json(&s).expect("metrics summary must validate");
        assert!(s.contains("\"edges\":100"));
        assert!(s.contains("\"depth\":-2"));
        assert!(s.contains("\"log2_buckets\":[[0,2],[10,1]]"));
        assert!(s.contains("\"p50\":"), "summary must carry quantile estimates");
        assert!(s.contains("\"p99\":"));
    }
}
