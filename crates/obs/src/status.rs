//! Live job status: a small mutex-guarded board per recorder that the
//! generation pipeline updates at its natural progress points (phase
//! changes, chunk closes, checkpoint barriers, resume skips, retries). The
//! HTTP endpoint's `GET /status` and the CLI `--progress` ticker read
//! point-in-time snapshots of it.
//!
//! The free functions in this module route through the *current* recorder
//! (innermost installed scope, else the global default) and are no-ops when
//! nothing is recording, so instrumented call sites stay cheap and never
//! perturb generator output.

use crate::json::JsonObject;
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct StatusInner {
    job_id: String,
    generator: String,
    phase: String,
    target_edges: u64,
    edges_done: u64,
    chunks_closed: u64,
    chunks_durable: u64,
    barriers: u64,
    resume_chunks_skipped: u64,
    retries: u64,
    restarts: u64,
    done: bool,
    started_micros: Option<u64>,
    updated_micros: u64,
}

/// Cloneable handle to one recorder's status board.
#[derive(Debug, Clone, Default)]
pub struct StatusBoard(Arc<Mutex<StatusInner>>);

/// A point-in-time copy of the status board.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Job identifier (caller-chosen or derived from generator + seed).
    pub job_id: String,
    /// Generator name (`"pgpba"`, `"pgsk"`).
    pub generator: String,
    /// Current phase (`"grow"`, `"attach"`, `"done"`, ...).
    pub phase: String,
    /// Requested synthetic edge count.
    pub target_edges: u64,
    /// Edges materialized so far (updated at completion for in-memory runs).
    pub edges_done: u64,
    /// Store chunks closed (written to their file) so far.
    pub chunks_closed: u64,
    /// Chunks made durable by the last checkpoint barrier.
    pub chunks_durable: u64,
    /// Checkpoint barriers written.
    pub barriers: u64,
    /// Chunks skipped on resume (already durable from a previous attempt).
    pub resume_chunks_skipped: u64,
    /// Transient-failure retries observed.
    pub retries: u64,
    /// Whole-job restarts (checkpointed retry loop).
    pub restarts: u64,
    /// Whether the job has finished.
    pub done: bool,
    /// Microseconds from trace epoch to job start, if a job began.
    pub started_micros: Option<u64>,
    /// Microseconds from trace epoch to the last update.
    pub updated_micros: u64,
}

impl StatusSnapshot {
    /// Renders the snapshot as a JSON object (the `GET /status` body).
    pub fn to_json(&self) -> String {
        let now = crate::span::now_micros();
        let mut o = JsonObject::new();
        o.str("job_id", &self.job_id);
        o.str("generator", &self.generator);
        o.str("phase", &self.phase);
        o.u64("target_edges", self.target_edges);
        o.u64("edges_done", self.edges_done);
        o.u64("chunks_closed", self.chunks_closed);
        o.u64("chunks_durable", self.chunks_durable);
        o.u64("checkpoint_barriers", self.barriers);
        o.u64("resume_chunks_skipped", self.resume_chunks_skipped);
        o.u64("retries", self.retries);
        o.u64("restarts", self.restarts);
        o.raw("done", if self.done { "true" } else { "false" });
        match self.started_micros {
            Some(s) => o.f64("uptime_secs", now.saturating_sub(s) as f64 / 1e6, 3),
            None => o.raw("uptime_secs", "null"),
        };
        o.f64("update_age_secs", now.saturating_sub(self.updated_micros) as f64 / 1e6, 3);
        o.finish()
    }

    /// A one-line progress summary for the `--progress` stderr ticker.
    pub fn ticker_line(&self) -> String {
        let mut line = format!(
            "[{}] {} edges {}/{}",
            if self.phase.is_empty() { "idle" } else { &self.phase },
            if self.job_id.is_empty() { "-" } else { &self.job_id },
            self.edges_done,
            self.target_edges
        );
        if self.chunks_closed > 0 || self.chunks_durable > 0 {
            line.push_str(&format!(
                " chunks {} durable {} barriers {}",
                self.chunks_closed, self.chunks_durable, self.barriers
            ));
        }
        if self.resume_chunks_skipped > 0 {
            line.push_str(&format!(" resumed-past {}", self.resume_chunks_skipped));
        }
        if self.retries > 0 || self.restarts > 0 {
            line.push_str(&format!(" retries {} restarts {}", self.retries, self.restarts));
        }
        line
    }
}

impl StatusBoard {
    fn update(&self, f: impl FnOnce(&mut StatusInner)) {
        let mut s = self.0.lock();
        f(&mut s);
        s.updated_micros = crate::span::now_micros();
    }

    /// Marks the start of a job, clearing progress from any previous one.
    pub fn begin_job(&self, job_id: &str, generator: &str, target_edges: u64) {
        self.update(|s| {
            *s = StatusInner {
                job_id: job_id.to_string(),
                generator: generator.to_string(),
                phase: "starting".to_string(),
                target_edges,
                started_micros: Some(crate::span::now_micros()),
                ..StatusInner::default()
            };
        });
    }

    /// Sets the current phase label.
    pub fn set_phase(&self, phase: &str) {
        self.update(|s| s.phase = phase.to_string());
    }

    /// Adds finished edges.
    pub fn add_edges(&self, n: u64) {
        self.update(|s| s.edges_done += n);
    }

    /// Counts `n` store chunks closed.
    pub fn add_chunks_closed(&self, n: u64) {
        self.update(|s| s.chunks_closed += n);
    }

    /// Records a checkpoint barrier making `chunks_durable` chunks durable.
    pub fn note_barrier(&self, chunks_durable: u64) {
        self.update(|s| {
            s.barriers += 1;
            s.chunks_durable = s.chunks_durable.max(chunks_durable);
        });
    }

    /// Counts chunks skipped because a resume found them already durable.
    pub fn add_resume_skipped(&self, chunks: u64) {
        self.update(|s| s.resume_chunks_skipped += chunks);
    }

    /// Counts one transient-failure retry.
    pub fn add_retry(&self) {
        self.update(|s| s.retries += 1);
    }

    /// Counts one whole-job restart.
    pub fn add_restart(&self) {
        self.update(|s| s.restarts += 1);
    }

    /// Marks the job finished.
    pub fn finish(&self) {
        self.update(|s| {
            s.done = true;
            s.phase = "done".to_string();
        });
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> StatusSnapshot {
        let s = self.0.lock();
        StatusSnapshot {
            job_id: s.job_id.clone(),
            generator: s.generator.clone(),
            phase: s.phase.clone(),
            target_edges: s.target_edges,
            edges_done: s.edges_done,
            chunks_closed: s.chunks_closed,
            chunks_durable: s.chunks_durable,
            barriers: s.barriers,
            resume_chunks_skipped: s.resume_chunks_skipped,
            retries: s.retries,
            restarts: s.restarts,
            done: s.done,
            started_micros: s.started_micros,
            updated_micros: s.updated_micros,
        }
    }

    pub(crate) fn reset(&self) {
        *self.0.lock() = StatusInner::default();
    }
}

fn with_board(f: impl FnOnce(&StatusBoard)) {
    if let Some(r) = crate::recorder::recording() {
        f(&r.status());
    }
}

/// Marks the start of a job on the current recorder's board.
pub fn begin_job(job_id: &str, generator: &str, target_edges: u64) {
    with_board(|b| b.begin_job(job_id, generator, target_edges));
}

/// Sets the current phase on the current recorder's board.
pub fn set_phase(phase: &str) {
    with_board(|b| b.set_phase(phase));
}

/// Adds finished edges on the current recorder's board.
pub fn note_edges(n: u64) {
    with_board(|b| b.add_edges(n));
}

/// Counts a closed store chunk on the current recorder's board.
pub fn note_chunk_closed(n: u64) {
    with_board(|b| b.add_chunks_closed(n));
}

/// Records a checkpoint barrier on the current recorder's board.
pub fn note_barrier(chunks_durable: u64) {
    with_board(|b| b.note_barrier(chunks_durable));
}

/// Counts resume-skipped chunks on the current recorder's board.
pub fn note_resume_skip(chunks: u64) {
    with_board(|b| b.add_resume_skipped(chunks));
}

/// Counts one retry on the current recorder's board.
pub fn note_retry() {
    with_board(|b| b.add_retry());
}

/// Counts one restart on the current recorder's board.
pub fn note_restart() {
    with_board(|b| b.add_restart());
}

/// Marks the current recorder's job finished.
pub fn finish() {
    with_board(|b| b.finish());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_tracks_progress_and_renders_json() {
        let b = StatusBoard::default();
        b.begin_job("job-1", "pgpba", 1000);
        b.set_phase("attach");
        b.add_chunks_closed(3);
        b.note_barrier(2);
        b.add_edges(500);
        let snap = b.snapshot();
        assert_eq!(snap.job_id, "job-1");
        assert_eq!(snap.phase, "attach");
        assert_eq!(snap.chunks_closed, 3);
        assert_eq!(snap.chunks_durable, 2);
        assert_eq!(snap.barriers, 1);
        let json = snap.to_json();
        crate::json::validate_json(&json).expect("status JSON must be valid");
        assert!(json.contains("\"job_id\":\"job-1\""));
        assert!(json.contains("\"checkpoint_barriers\":1"));
    }

    #[test]
    fn begin_job_clears_previous_progress() {
        let b = StatusBoard::default();
        b.begin_job("a", "pgsk", 10);
        b.add_chunks_closed(5);
        b.add_retry();
        b.begin_job("b", "pgsk", 20);
        let snap = b.snapshot();
        assert_eq!(snap.job_id, "b");
        assert_eq!(snap.chunks_closed, 0);
        assert_eq!(snap.retries, 0);
        assert!(snap.started_micros.is_some());
    }

    #[test]
    fn durable_chunks_never_regress() {
        let b = StatusBoard::default();
        b.note_barrier(8);
        b.note_barrier(4);
        let snap = b.snapshot();
        assert_eq!(snap.chunks_durable, 8);
        assert_eq!(snap.barriers, 2);
    }

    #[test]
    fn free_functions_route_to_scoped_recorder() {
        let _l = crate::span::test_lock();
        let rec = crate::Recorder::new();
        {
            let _scope = rec.install();
            begin_job("scoped", "pgpba", 7);
            note_chunk_closed(2);
        }
        // Outside the scope with the global recorder disabled: dropped.
        note_chunk_closed(50);
        let snap = rec.status().snapshot();
        assert_eq!(snap.job_id, "scoped");
        assert_eq!(snap.chunks_closed, 2);
    }

    #[test]
    fn ticker_line_mentions_progress() {
        let b = StatusBoard::default();
        b.begin_job("t", "pgpba", 100);
        b.set_phase("store");
        b.add_chunks_closed(4);
        b.note_barrier(4);
        let line = b.snapshot().ticker_line();
        assert!(line.contains("[store]"));
        assert!(line.contains("chunks 4"));
    }
}
