//! A zero-dependency HTTP endpoint over `std::net::TcpListener` with
//! pluggable routes. The default route table serves one recorder's live
//! telemetry:
//!
//! * `GET /metrics` — Prometheus text exposition (see [`crate::promtext`])
//! * `GET /status`  — live job status as JSON (see [`crate::status`])
//! * `GET /`        — a plain-text index of the registered routes
//!
//! Consumers with more to expose (csb-serve's queue and job pages) build a
//! [`Router`], add handlers, and pass it to [`ObsServer::serve_router`] —
//! one accept loop implementation for every endpoint in the workspace.
//!
//! One accept-loop thread, one connection at a time, `Connection: close`
//! semantics — deliberately minimal: the consumers are a Prometheus scraper
//! and `curl` during a run, not a web tier. Shutdown is deterministic: the
//! accept loop is woken with a self-connection and joined, both from
//! [`ObsServer::shutdown`] and from `Drop`, so no socket lingers after the
//! handle is gone.

use crate::recorder::Recorder;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A response produced by a route handler.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status line text, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> HttpResponse {
        HttpResponse { status: "200 OK", content_type: "text/plain", body: body.into() }
    }

    /// A `200 OK` JSON response (a trailing newline is appended for `curl`).
    pub fn json(body: impl Into<String>) -> HttpResponse {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        HttpResponse { status: "200 OK", content_type: "application/json", body }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: "404 Not Found",
            content_type: "text/plain",
            body: "not found\n".into(),
        }
    }
}

type Handler = Box<dyn Fn() -> HttpResponse + Send + Sync>;

struct Route {
    path: String,
    help: String,
    handler: Handler,
}

/// An exact-path route table for [`ObsServer::serve_router`]. `GET /` is
/// synthesized from the registered routes' help lines; unknown paths get a
/// 404 and non-GET methods a 405.
#[derive(Default)]
pub struct Router {
    title: String,
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<&str> = self.routes.iter().map(|r| r.path.as_str()).collect();
        f.debug_struct("Router").field("title", &self.title).field("routes", &paths).finish()
    }
}

impl Router {
    /// An empty router titled for the `GET /` index page.
    pub fn new(title: impl Into<String>) -> Router {
        Router { title: title.into(), routes: Vec::new() }
    }

    /// Registers `handler` for exact path `path` (e.g. `/metrics`); `help`
    /// is the one-line description shown on the index page.
    pub fn route(
        mut self,
        path: impl Into<String>,
        help: impl Into<String>,
        handler: impl Fn() -> HttpResponse + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            path: path.into(),
            help: help.into(),
            handler: Box::new(handler),
        });
        self
    }

    /// The standard telemetry route table for `recorder`: `/metrics`
    /// (Prometheus text) and `/status` (job status JSON).
    pub fn telemetry(recorder: Recorder) -> Router {
        let metrics_rec = recorder.clone();
        Router::new("csb live telemetry")
            .route("/metrics", "Prometheus text exposition", move || HttpResponse {
                status: "200 OK",
                content_type: "text/plain; version=0.0.4",
                body: crate::promtext::prometheus_text(&metrics_rec.snapshot_metrics()),
            })
            .route("/status", "job status JSON", move || {
                HttpResponse::json(recorder.status().snapshot().to_json())
            })
    }

    fn dispatch(&self, path: &str) -> HttpResponse {
        if path == "/" {
            let mut body = format!("{}\n\n", self.title);
            for r in &self.routes {
                body.push_str(&format!("GET {:<12} {}\n", r.path, r.help));
            }
            return HttpResponse::text(body);
        }
        match self.routes.iter().find(|r| r.path == path) {
            Some(r) => (r.handler)(),
            None => HttpResponse::not_found(),
        }
    }
}

/// Handle to a running HTTP endpoint; dropping it shuts the server down
/// (stop, wake, join — same as [`ObsServer::shutdown`]).
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
    /// `recorder`'s telemetry until shutdown.
    pub fn serve(addr: &str, recorder: Recorder) -> std::io::Result<ObsServer> {
        ObsServer::serve_router(addr, Router::telemetry(recorder))
    }

    /// Binds `addr` and serves `router`'s route table until shutdown.
    pub fn serve_router(addr: &str, router: Router) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("csb-obs-http".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop_in.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    // Per-connection errors (slow, hung-up clients) only
                    // affect that client; the endpoint keeps serving.
                    let _ = handle_conn(stream, &router);
                }
            }
        })?;
        Ok(ObsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head; everything we route on sits in
    // the first line, so a body (which GET has no business sending) is moot.
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let first = head.lines().next().unwrap_or_default();
    let mut parts = first.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let path = path.split('?').next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    let r = router.dispatch(path);
    respond(&mut stream, r.status, r.content_type, &r.body)
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_status_index_and_404() {
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        rec.counter("test.http.hits").add(3);
        rec.histogram("test.http.lat").record(12);
        rec.status().begin_job("http-job", "pgpba", 42);
        let server = ObsServer::serve("127.0.0.1:0", rec).expect("bind");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"));
        crate::promtext::validate_prometheus_text(&body).expect("exposition must validate");
        assert!(body.contains("csb_test_http_hits 3"));
        assert!(body.contains("csb_test_http_lat{quantile=\"0.5\"}"));

        let (head, body) = http_get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        crate::json::validate_json(body.trim()).expect("status must be JSON");
        assert!(body.contains("\"job_id\":\"http-job\""));

        let (head, body) = http_get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"));

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn metrics_reflect_live_updates_between_requests() {
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        let c = rec.counter("test.http.live");
        let server = ObsServer::serve("127.0.0.1:0", rec).expect("bind");
        c.add(1);
        let (_, body1) = http_get(server.addr(), "/metrics");
        c.add(9);
        let (_, body2) = http_get(server.addr(), "/metrics");
        assert!(body1.contains("csb_test_http_live 1"), "{body1}");
        assert!(body2.contains("csb_test_http_live 10"), "{body2}");
        server.shutdown();
    }

    #[test]
    fn custom_routes_extend_the_default_table() {
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits_in = Arc::clone(&hits);
        let router = Router::telemetry(rec).route("/jobs", "job table JSON", move || {
            hits_in.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json("{\"jobs\":[]}")
        });
        let server = ObsServer::serve_router("127.0.0.1:0", router).expect("bind");

        let (head, body) = http_get(server.addr(), "/jobs");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"jobs\":[]}\n");
        assert_eq!(hits.load(Ordering::Relaxed), 1);

        // The synthesized index lists the custom route alongside the defaults.
        let (_, index) = http_get(server.addr(), "/");
        for path in ["/metrics", "/status", "/jobs"] {
            assert!(index.contains(path), "index must list {path}: {index}");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let rec = Recorder::new();
        let server = ObsServer::serve("127.0.0.1:0", rec).expect("bind");
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port must be released after shutdown");
    }

    #[test]
    fn drop_joins_the_accept_thread_and_frees_the_port() {
        let addr;
        {
            let server = ObsServer::serve("127.0.0.1:0", Recorder::new()).expect("bind");
            addr = server.addr();
        } // Drop, not shutdown(): must still stop, wake, and join.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port must be released after drop");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let rec = Recorder::new();
        let server = ObsServer::serve("127.0.0.1:0", rec).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.shutdown();
    }
}
