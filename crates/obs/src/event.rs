//! Leveled diagnostic events, gated by the `CSB_LOG` environment variable.
//!
//! `CSB_LOG` is read once per process: unset (or unparsable) means **off** —
//! the library crates stay silent by default. `CSB_LOG=warn|info|debug`
//! enables that level and everything above it. Events go to stderr as
//! `[csb <level> <module>] message`, keeping stdout for command output.
//!
//! Use through the macros:
//!
//! ```
//! csb_obs::obs_info!("generated {} edges", 42);
//! csb_obs::obs_debug!("chunk {} of {}", 1, 8);
//! ```

use std::sync::OnceLock;

/// Event severity, ordered most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unexpected-but-survivable conditions.
    Warn,
    /// Milestones of a run (phase completions, output sizes).
    Info,
    /// Per-round / per-batch detail.
    Debug,
}

impl Level {
    /// Lowercase name, as spelled in `CSB_LOG` and in the output prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `CSB_LOG` value. Anything unrecognized (including empty) is
/// treated as off so a typo can never make a run noisy.
fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

fn max_level() -> Option<Level> {
    static LEVEL: OnceLock<Option<Level>> = OnceLock::new();
    *LEVEL.get_or_init(|| std::env::var("CSB_LOG").ok().as_deref().and_then(parse_level))
}

/// Whether events at `level` are emitted under the current `CSB_LOG`.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emits one event line to stderr. Callers should gate on
/// [`level_enabled`] first (the macros do) so disabled events never pay for
/// argument formatting.
pub fn emit(level: Level, module: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("[csb {} {}] {}", level.as_str(), module, args);
}

/// Emits a `warn`-level event when `CSB_LOG` is `warn` or lower.
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        if $crate::event::level_enabled($crate::event::Level::Warn) {
            $crate::event::emit($crate::event::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Emits an `info`-level event when `CSB_LOG` is `info` or `debug`.
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => {
        if $crate::event::level_enabled($crate::event::Level::Info) {
            $crate::event::emit($crate::event::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Emits a `debug`-level event when `CSB_LOG` is `debug`.
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        if $crate::event::level_enabled($crate::event::Level::Debug) {
            $crate::event::emit($crate::event::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_levels_case_insensitively() {
        assert_eq!(parse_level("warn"), Some(Level::Warn));
        assert_eq!(parse_level("WARNING"), Some(Level::Warn));
        assert_eq!(parse_level(" Info "), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level(""), None);
        assert_eq!(parse_level("verbose"), None);
        assert_eq!(parse_level("1"), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn macros_compile_and_are_silent_without_csb_log() {
        // CSB_LOG is not set in the test environment, so these must be
        // no-ops (and, critically, must not panic or print to stdout).
        crate::obs_warn!("warn {}", 1);
        crate::obs_info!("info {}", 2);
        crate::obs_debug!("debug {}", 3);
    }
}
