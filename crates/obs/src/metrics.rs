//! Metrics: named atomic counters, gauges, and log₂-bucketed histograms in
//! a per-recorder registry (see [`crate::recorder`]). Handles are `Arc`s
//! into the registry, so the per-update cost after the first lookup is a
//! single atomic RMW; the convenience free functions ([`counter_add`] and
//! friends) look the name up each call and are for cold-to-warm paths, not
//! per-record inner loops. The free functions and [`counter`]-style handle
//! getters resolve the *current* recorder — the innermost installed scope on
//! the calling thread, else the global default.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets: bucket `i` counts values `v` with
/// `floor(log2(max(v,1))) == i`, which covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket covering `v`: `floor(log2(max(v, 1)))`.
    pub fn bucket_of(v: u64) -> usize {
        (63 - v.max(1).leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A histogram's values at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) by rank walk over the log₂
    /// buckets with linear interpolation inside the landing bucket. The
    /// bucket bound makes the estimate exact to within a factor of 2 in the
    /// worst case and to a few percent for spread-out distributions.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 { u64::MAX as f64 } else { (1u64 << (i + 1)) as f64 };
                let frac = (target - cum) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            cum += c;
        }
        u64::MAX as f64
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A registry: name → metric. `BTreeMap` so snapshots and exports are
/// deterministically ordered. Each [`crate::Recorder`] owns one.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    inner: Mutex<Maps>,
}

#[derive(Debug, Default)]
struct Maps {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.inner.lock().counters.entry(name).or_default())
    }

    pub(crate) fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.inner.lock().gauges.entry(name).or_default())
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.inner.lock().histograms.entry(name).or_default())
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.lock();
        MetricsSnapshot {
            counters: m.counters.iter().map(|(&n, c)| (n, c.get())).collect(),
            gauges: m.gauges.iter().map(|(&n, g)| (n, g.get())).collect(),
            histograms: m.histograms.iter().map(|(&n, h)| (n, h.snapshot())).collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid) and forgets
    /// names that have no outstanding handles.
    pub(crate) fn clear(&self) {
        let mut m = self.inner.lock();
        for c in m.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in m.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in m.histograms.values() {
            h.clear();
        }
        m.counters.retain(|_, c| Arc::strong_count(c) > 1);
        m.gauges.retain(|_, g| Arc::strong_count(g) > 1);
        m.histograms.retain(|_, h| Arc::strong_count(h) > 1);
    }
}

/// Registers (or fetches) a counter handle in the current recorder. Hold the
/// handle across a hot loop to skip the name lookup per update.
pub fn counter(name: &'static str) -> Arc<Counter> {
    crate::recorder::current().counter(name)
}

/// Registers (or fetches) a gauge handle in the current recorder.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    crate::recorder::current().gauge(name)
}

/// Registers (or fetches) a histogram handle in the current recorder.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    crate::recorder::current().histogram(name)
}

/// Adds to a named counter when the current recorder is recording.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if let Some(r) = crate::recorder::recording() {
        r.counter(name).add(v);
    }
}

/// Sets a named gauge when the current recorder is recording.
#[inline]
pub fn gauge_set(name: &'static str, v: i64) {
    if let Some(r) = crate::recorder::recording() {
        r.gauge(name).set(v);
    }
}

/// Records into a named histogram when the current recorder is recording.
#[inline]
pub fn histogram_record(name: &'static str, v: u64) {
    if let Some(r) = crate::recorder::recording() {
        r.histogram(name).record(v);
    }
}

/// Every registered metric's value at one instant, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Value of a named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// Snapshots the current recorder's whole registry.
pub fn snapshot_metrics() -> MetricsSnapshot {
    crate::recorder::current().snapshot_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 1024, 1025] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2055);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 2);
        assert!((s.mean() - 411.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Log₂-bucket interpolation lands within ~10% on a uniform spread.
        assert!((s.p50() - 500.0).abs() / 500.0 < 0.10, "p50={}", s.p50());
        assert!((s.p90() - 900.0).abs() / 900.0 < 0.10, "p90={}", s.p90());
        assert!((s.p99() - 990.0).abs() / 990.0 < 0.10, "p99={}", s.p99());
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
    }

    #[test]
    fn quantiles_on_constant_distribution_stay_in_bucket() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(7);
        }
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let est = s.quantile(q);
            // Bucket [4, 8) bounds the worst-case error at 2×.
            assert!((4.0..=8.0).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert!(s.p50() < 20.0, "p50={}", s.p50());
        assert!(s.p99() > 60_000.0, "p99={}", s.p99());
        assert_eq!(s.quantile(0.0), s.quantile(0.0).max(0.0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn handles_share_state_with_named_updates() {
        let _l = crate::span::test_lock();
        crate::reset();
        crate::enable();
        let c = counter("test.metrics.shared");
        counter_add("test.metrics.shared", 7);
        c.add(3);
        assert_eq!(c.get(), 10);
        let snap = snapshot_metrics();
        assert!(snap.counters.contains(&("test.metrics.shared", 10)));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let _l = crate::span::test_lock();
        crate::reset();
        crate::enable();
        counter_add("test.sort.b", 1);
        counter_add("test.sort.a", 1);
        let snap = snapshot_metrics();
        let names: Vec<&str> = snap.counters.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        crate::disable();
        crate::reset();
    }
}
