//! Global metrics registry: named atomic counters, gauges, and
//! log₂-bucketed histograms. Handles are `Arc`s into the registry, so the
//! per-update cost after the first lookup is a single atomic RMW; the
//! convenience free functions ([`counter_add`] and friends) look the name up
//! each call and are for cold-to-warm paths, not per-record inner loops.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets: bucket `i` counts values `v` with
/// `floor(log2(max(v,1))) == i`, which covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket covering `v`: `floor(log2(max(v, 1)))`.
    pub fn bucket_of(v: u64) -> usize {
        (63 - v.max(1).leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A histogram's values at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry: name → metric. `BTreeMap` so snapshots and exports are
/// deterministically ordered.
#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Registry::default))
}

/// Registers (or fetches) a counter handle. Hold the handle across a hot
/// loop to skip the name lookup per update.
pub fn counter(name: &'static str) -> Arc<Counter> {
    with_registry(|r| Arc::clone(r.counters.entry(name).or_default()))
}

/// Registers (or fetches) a gauge handle.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    with_registry(|r| Arc::clone(r.gauges.entry(name).or_default()))
}

/// Registers (or fetches) a histogram handle.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    with_registry(|r| Arc::clone(r.histograms.entry(name).or_default()))
}

/// Adds to a named counter when the collector is enabled.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if crate::enabled() {
        counter(name).add(v);
    }
}

/// Sets a named gauge when the collector is enabled.
#[inline]
pub fn gauge_set(name: &'static str, v: i64) {
    if crate::enabled() {
        gauge(name).set(v);
    }
}

/// Records into a named histogram when the collector is enabled.
#[inline]
pub fn histogram_record(name: &'static str, v: u64) {
    if crate::enabled() {
        histogram(name).record(v);
    }
}

/// Every registered metric's value at one instant, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

/// Snapshots the whole registry.
pub fn snapshot_metrics() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.iter().map(|(&n, c)| (n, c.get())).collect(),
        gauges: r.gauges.iter().map(|(&n, g)| (n, g.get())).collect(),
        histograms: r.histograms.iter().map(|(&n, h)| (n, h.snapshot())).collect(),
    })
}

/// Zeroes every registered metric (handles stay valid) and forgets names
/// that have no outstanding handles.
pub(crate) fn clear() {
    with_registry(|r| {
        for c in r.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in r.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in r.histograms.values() {
            h.clear();
        }
        r.counters.retain(|_, c| Arc::strong_count(c) > 1);
        r.gauges.retain(|_, g| Arc::strong_count(g) > 1);
        r.histograms.retain(|_, h| Arc::strong_count(h) > 1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 1024, 1025] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2055);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 2);
        assert!((s.mean() - 411.0).abs() < 1e-9);
    }

    #[test]
    fn handles_share_state_with_named_updates() {
        let _l = crate::span::test_lock();
        crate::reset();
        crate::enable();
        let c = counter("test.metrics.shared");
        counter_add("test.metrics.shared", 7);
        c.add(3);
        assert_eq!(c.get(), 10);
        let snap = snapshot_metrics();
        assert!(snap.counters.contains(&("test.metrics.shared", 10)));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let _l = crate::span::test_lock();
        crate::reset();
        crate::enable();
        counter_add("test.sort.b", 1);
        counter_add("test.sort.a", 1);
        let snap = snapshot_metrics();
        let names: Vec<&str> = snap.counters.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        crate::disable();
        crate::reset();
    }
}
