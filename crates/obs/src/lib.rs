//! # csb-obs
//!
//! Zero-dependency observability for the generation pipeline: scoped spans
//! with thread-local buffers, a global registry of atomic counters / gauges /
//! log₂-bucketed histograms, leveled stderr events (`CSB_LOG`), and three
//! exporters — Chrome trace-event JSON (loadable in Perfetto / `chrome://
//! tracing`), a JSONL event stream, and a metrics-summary JSON object.
//!
//! The collector is **off by default**. Every instrumentation point first
//! performs a single relaxed atomic load ([`enabled`]); when the collector is
//! disabled that load is the entire cost, so instrumented hot paths run at
//! effectively uninstrumented speed. Instrumentation never participates in
//! generator RNG streams, so output graphs are bit-identical with the
//! collector on or off.
//!
//! ```
//! csb_obs::enable();
//! {
//!     let _g = csb_obs::span("demo.work");
//!     csb_obs::counter_add("demo.items", 3);
//! }
//! let spans = csb_obs::flush_spans();
//! assert_eq!(spans.len(), 1);
//! let trace = csb_obs::export::chrome_trace_json(&spans);
//! assert!(csb_obs::json::validate_json(&trace).is_ok());
//! csb_obs::disable();
//! csb_obs::reset();
//! ```

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{counter_add, gauge_set, histogram_record, snapshot_metrics, MetricsSnapshot};
pub use span::{flush_spans, span, span_cat, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global collector switch. Relaxed ordering is deliberate: the flag gates
/// *whether* data is recorded, not *what* is recorded, and the flush path
/// synchronizes through the buffer mutexes.
static COLLECT: AtomicBool = AtomicBool::new(false);

/// Turns the collector on. Spans and metric updates issued from now on are
/// recorded; the first call also pins the trace epoch (timestamp zero).
pub fn enable() {
    span::epoch();
    COLLECT.store(true, Ordering::Relaxed);
}

/// Turns the collector off. Spans already buffered stay buffered until
/// [`flush_spans`] or [`reset`].
pub fn disable() {
    COLLECT.store(false, Ordering::Relaxed);
}

/// Whether the collector is recording — one relaxed load, the whole cost of
/// the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    COLLECT.load(Ordering::Relaxed)
}

/// Discards all buffered spans and zeroes every registered metric. Intended
/// for tests and for back-to-back runs in one process.
pub fn reset() {
    span::clear();
    metrics::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        // Note: tests in this crate that toggle the global collector are
        // serialized through `span::tests::GLOBAL_LOCK`.
        let _l = span::test_lock();
        disable();
        reset();
        {
            let _g = span("never.recorded");
            counter_add("never.counted", 5);
        }
        assert!(flush_spans().is_empty());
        assert!(snapshot_metrics().counters.is_empty());
    }

    #[test]
    fn enable_disable_round_trip() {
        let _l = span::test_lock();
        reset();
        enable();
        assert!(enabled());
        {
            let _g = span("once");
        }
        disable();
        assert!(!enabled());
        {
            let _g = span("not.recorded");
        }
        let spans = flush_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "once");
        reset();
    }
}
