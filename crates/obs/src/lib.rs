//! # csb-obs
//!
//! Zero-dependency observability for the generation pipeline: scoped spans
//! with thread-local buffers, per-recorder registries of atomic counters /
//! gauges / log₂-bucketed histograms, a live status board, leveled stderr
//! events (`CSB_LOG`), a background `/proc` resource [`Sampler`], a
//! Prometheus-text [`ObsServer`] HTTP endpoint, a span-profile aggregator,
//! and three exporters — Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`), a JSONL event stream, and a metrics-summary JSON
//! object.
//!
//! Telemetry routes through [`Recorder`]s. The process-global default
//! recorder carries everything emitted outside a [`Recorder::install`]
//! scope, which is exactly the old single-registry behavior; scoped
//! recorders give concurrent jobs disjoint telemetry (see the
//! [`recorder`] module).
//!
//! The collector is **off by default**. Every instrumentation point first
//! performs at most two relaxed atomic loads ([`enabled`]); when nothing in
//! the process is recording those loads are the entire cost, so
//! instrumented hot paths run at effectively uninstrumented speed.
//! Instrumentation never participates in generator RNG streams, so output
//! graphs are bit-identical with the collector on or off — and with
//! telemetry scoped or global.
//!
//! ```
//! csb_obs::enable();
//! {
//!     let _g = csb_obs::span("demo.work");
//!     csb_obs::counter_add("demo.items", 3);
//! }
//! let spans = csb_obs::flush_spans();
//! assert_eq!(spans.len(), 1);
//! let trace = csb_obs::export::chrome_trace_json(&spans);
//! assert!(csb_obs::json::validate_json(&trace).is_ok());
//! csb_obs::disable();
//! csb_obs::reset();
//! ```

pub mod event;
pub mod export;
pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod promtext;
pub mod recorder;
pub mod sampler;
pub mod span;
pub mod status;

pub use http::{HttpResponse, ObsServer, Router};
pub use metrics::{counter_add, gauge_set, histogram_record, snapshot_metrics, MetricsSnapshot};
pub use recorder::{Recorder, RecorderScope};
pub use sampler::Sampler;
pub use span::{flush_spans, span, span_cat, SpanGuard, SpanRecord};
pub use status::{StatusBoard, StatusSnapshot};

/// Turns the **global** recorder on. Spans and metric updates issued outside
/// any scope from now on are recorded; the first call also pins the trace
/// epoch (timestamp zero).
pub fn enable() {
    Recorder::global().enable();
}

/// Turns the global recorder off. Spans already buffered stay buffered until
/// [`flush_spans`] or [`reset`]. Scoped recorders are unaffected.
pub fn disable() {
    Recorder::global().disable();
}

/// Whether anything in the process could be recording — the global recorder
/// is enabled or some thread has a recorder scope installed. At most two
/// relaxed loads; the whole cost of the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    recorder::gate()
}

/// Discards all buffered spans and zeroes every registered metric of the
/// current recorder (the global default outside any scope). Intended for
/// tests and for back-to-back runs in one process.
pub fn reset() {
    recorder::current().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        // Note: tests in this crate that toggle the global collector are
        // serialized through `span::test_lock`.
        let _l = span::test_lock();
        disable();
        reset();
        {
            let _g = span("never.recorded");
            counter_add("never.counted", 5);
        }
        assert!(flush_spans().is_empty());
        assert!(snapshot_metrics().counters.is_empty());
    }

    #[test]
    fn enable_disable_round_trip() {
        let _l = span::test_lock();
        reset();
        enable();
        assert!(enabled());
        {
            let _g = span("once");
        }
        disable();
        assert!(!enabled());
        {
            let _g = span("not.recorded");
        }
        let spans = flush_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "once");
        reset();
    }
}
