//! Scoped recorders: per-job telemetry state (metrics registry, span
//! buffers, status board) behind a cheap cloneable handle, so two concurrent
//! jobs in one process never cross-contaminate.
//!
//! The process-global registry that predates this module is simply the
//! *default* recorder: every existing free function (`counter_add`,
//! `flush_spans`, `snapshot_metrics`, ...) now resolves the **current**
//! recorder — the innermost [`Recorder::install`] scope on the calling
//! thread, falling back to [`Recorder::global`] when none is installed — so
//! code written against the old global API keeps working unchanged.
//!
//! ```
//! let rec = csb_obs::Recorder::new();
//! {
//!     let _scope = rec.install();
//!     csb_obs::counter_add("scoped.items", 2);
//!     let _g = csb_obs::span("scoped.work");
//! }
//! assert_eq!(rec.snapshot_metrics().counters, vec![("scoped.items", 2)]);
//! assert_eq!(rec.flush_spans().len(), 1);
//! // The global recorder saw none of it.
//! assert!(!csb_obs::enabled());
//! ```

use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::span::SpanRecord;
use crate::status::StatusBoard;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-recorder span sink: the live buffers of threads that have recorded
/// into this recorder, plus spans flushed from threads that have exited.
#[derive(Debug, Default)]
pub(crate) struct SpanSink {
    pub(crate) live: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>>,
    pub(crate) completed: Mutex<Vec<SpanRecord>>,
}

#[derive(Debug)]
pub(crate) struct RecorderInner {
    id: u64,
    pub(crate) enabled: AtomicBool,
    metrics: Registry,
    spans: SpanSink,
    status: StatusBoard,
}

/// A self-contained telemetry sink: metrics registry + span buffers + live
/// status board. Cloning is an `Arc` bump; clones share state. Recorders
/// created with [`Recorder::new`] start enabled; the global default recorder
/// starts disabled and is toggled by [`crate::enable`] / [`crate::disable`].
#[derive(Debug, Clone)]
pub struct Recorder(pub(crate) Arc<RecorderInner>);

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// Count of installed scopes across all threads — part of the fast gate:
/// when zero and the global recorder is disabled, instrumentation costs two
/// relaxed loads and nothing more.
static SCOPES: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

thread_local! {
    /// Stack of installed recorders on this thread; innermost wins.
    static CURRENT: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    fn with_enabled(enabled: bool) -> Recorder {
        Recorder(Arc::new(RecorderInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(enabled),
            metrics: Registry::default(),
            spans: SpanSink::default(),
            status: StatusBoard::default(),
        }))
    }

    /// A fresh, enabled recorder with empty state.
    pub fn new() -> Recorder {
        crate::span::epoch();
        Self::with_enabled(true)
    }

    /// The process-global default recorder — the sink for all telemetry
    /// emitted outside any [`Recorder::install`] scope.
    pub fn global() -> &'static Recorder {
        GLOBAL.get_or_init(|| Self::with_enabled(false))
    }

    /// Stable id, unique within the process.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Starts recording into this recorder.
    pub fn enable(&self) {
        crate::span::epoch();
        self.0.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording. Buffered spans/metrics stay until flushed or reset.
    pub fn disable(&self) {
        self.0.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether this recorder is accepting records.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Makes this recorder current on the calling thread until the returned
    /// scope drops. Scopes nest; the innermost wins. The scope is neither
    /// `Send` nor `Sync` — install separately on each worker thread (clone
    /// the recorder into the thread and install there).
    pub fn install(&self) -> RecorderScope {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        SCOPES.fetch_add(1, Ordering::Relaxed);
        RecorderScope { _not_send: PhantomData }
    }

    /// Registers (or fetches) a counter in this recorder's registry.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.0.metrics.counter(name)
    }

    /// Registers (or fetches) a gauge in this recorder's registry.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.0.metrics.gauge(name)
    }

    /// Registers (or fetches) a histogram in this recorder's registry.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.0.metrics.histogram(name)
    }

    /// Snapshots this recorder's metrics, sorted by name.
    pub fn snapshot_metrics(&self) -> MetricsSnapshot {
        self.0.metrics.snapshot()
    }

    /// This recorder's live status board (cloneable handle).
    pub fn status(&self) -> StatusBoard {
        self.0.status.clone()
    }

    /// Drains every buffered span — from live threads and from threads that
    /// have since exited — sorted by start time.
    pub fn flush_spans(&self) -> Vec<SpanRecord> {
        let mut out = std::mem::take(&mut *self.0.spans.completed.lock());
        for buf in self.0.spans.live.lock().iter() {
            out.append(&mut buf.lock());
        }
        out.sort_by_key(|s| (s.start_micros, s.thread));
        out
    }

    /// Number of live (thread-attached) span buffers — a diagnostic for the
    /// thread-exit flush path: buffers deregister when their thread dies.
    pub fn live_span_buffers(&self) -> usize {
        self.0.spans.live.lock().len()
    }

    /// Discards buffered spans and zeroes every metric (metric handles stay
    /// valid; names with no outstanding handles are forgotten).
    pub fn reset(&self) {
        self.0.spans.completed.lock().clear();
        for buf in self.0.spans.live.lock().iter() {
            buf.lock().clear();
        }
        self.0.metrics.clear();
        self.0.status.reset();
    }

    pub(crate) fn register_live_buffer(&self, buf: &Arc<Mutex<Vec<SpanRecord>>>) {
        self.0.spans.live.lock().push(Arc::clone(buf));
    }

    /// Thread-exit path: move a dying thread's spans into `completed` and
    /// drop its buffer from the live list, so spans survive the thread and
    /// the live list does not grow without bound.
    pub(crate) fn adopt_thread_buffer(&self, buf: &Arc<Mutex<Vec<SpanRecord>>>) {
        let mut drained = std::mem::take(&mut *buf.lock());
        self.0.spans.completed.lock().append(&mut drained);
        self.0.spans.live.lock().retain(|b| !Arc::ptr_eq(b, buf));
    }

    pub(crate) fn push_completed(&self, s: SpanRecord) {
        self.0.spans.completed.lock().push(s);
    }
}

/// RAII guard from [`Recorder::install`]; restores the previous current
/// recorder on drop.
#[must_use = "the recorder is only current while the scope guard is alive"]
#[derive(Debug)]
pub struct RecorderScope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        SCOPES.fetch_sub(1, Ordering::Relaxed);
        // The thread-local may already be torn down during thread exit.
        let _ = CURRENT.try_with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The recorder telemetry on this thread routes to: the innermost installed
/// scope, else the global default. Public so pipeline code can capture it
/// before handing work to pool/worker threads (which do not inherit scopes)
/// and re-[`Recorder::install`] it inside the worker closure.
pub fn current() -> Recorder {
    CURRENT
        .try_with(|c| c.borrow().last().cloned())
        .ok()
        .flatten()
        .unwrap_or_else(|| Recorder::global().clone())
}

/// Fast instrumentation gate: true when anything in the process could be
/// recording — the global recorder is enabled, or any thread has a scope
/// installed. Two relaxed loads; the entire disabled-path cost.
#[inline(always)]
pub(crate) fn gate() -> bool {
    SCOPES.load(Ordering::Relaxed) != 0
        || GLOBAL.get().is_some_and(|r| r.0.enabled.load(Ordering::Relaxed))
}

/// The recorder to record into right now, or `None` when the current
/// recorder is disabled (or nothing in the process is recording).
#[inline]
pub(crate) fn recording() -> Option<Recorder> {
    if !gate() {
        return None;
    }
    let r = current();
    if r.is_enabled() {
        Some(r)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_recorder_is_isolated_from_global() {
        let _l = crate::span::test_lock();
        crate::reset();
        crate::disable();
        let rec = Recorder::new();
        {
            let _scope = rec.install();
            crate::counter_add("test.rec.iso", 11);
            let _g = crate::span("test.rec.span");
        }
        // Outside the scope, with the global recorder disabled, nothing lands.
        crate::counter_add("test.rec.iso", 100);
        assert_eq!(rec.snapshot_metrics().counters, vec![("test.rec.iso", 11)]);
        assert_eq!(rec.flush_spans().len(), 1);
        assert!(crate::snapshot_metrics().counters.is_empty());
        assert!(crate::flush_spans().is_empty());
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let _l = crate::span::test_lock();
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _o = outer.install();
        crate::counter_add("test.nest", 1);
        {
            let _i = inner.install();
            crate::counter_add("test.nest", 10);
        }
        crate::counter_add("test.nest", 2);
        assert_eq!(outer.snapshot_metrics().counters, vec![("test.nest", 3)]);
        assert_eq!(inner.snapshot_metrics().counters, vec![("test.nest", 10)]);
    }

    #[test]
    fn disabled_scoped_recorder_records_nothing() {
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        rec.disable();
        let _scope = rec.install();
        crate::counter_add("test.rec.off", 1);
        let _g = crate::span("test.rec.off");
        drop(_g);
        assert!(rec.snapshot_metrics().counters.is_empty());
        assert!(rec.flush_spans().is_empty());
    }

    #[test]
    fn recorder_propagates_into_spawned_threads_by_install() {
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let _scope = rec.install();
                    crate::counter_add("test.rec.worker", i + 1);
                    let _g = crate::span("test.rec.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.snapshot_metrics().counters, vec![("test.rec.worker", 6)]);
        assert_eq!(rec.flush_spans().len(), 3);
    }

    #[test]
    fn spans_survive_thread_exit_and_buffers_deregister() {
        // Regression: spans recorded by a worker thread must outlive the
        // thread, and the dead thread's buffer must leave the live list.
        let _l = crate::span::test_lock();
        let rec = Recorder::new();
        let before = rec.live_span_buffers();
        for _ in 0..8 {
            let r = rec.clone();
            std::thread::spawn(move || {
                let _scope = r.install();
                let _g = crate::span("test.rec.dying");
            })
            .join()
            .unwrap();
        }
        assert_eq!(
            rec.live_span_buffers(),
            before,
            "dead threads' buffers must deregister, not accumulate"
        );
        // All 8 spans were flushed into `completed` on thread exit.
        assert_eq!(rec.flush_spans().len(), 8);
    }
}
