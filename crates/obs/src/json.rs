//! Minimal hand-rolled JSON support: an escaping object/array writer used by
//! every exporter (and by `csb_core::PhaseTimings::to_json`), plus a strict
//! validator the tests use to check exporter output without a JSON parser
//! dependency.

/// Escapes `s` into `out` as JSON string *contents* (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental JSON object writer. Fields appear in insertion order;
/// [`JsonObject::finish`] closes the object and returns the string.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field with fixed decimal places (non-finite values
    /// serialize as `null`, which JSON requires).
    pub fn f64(&mut self, k: &str, v: f64, decimals: usize) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.decimals$}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes an iterator of already-serialized JSON values as an array.
pub fn array_of<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Validates that `s` is exactly one well-formed JSON value (RFC 8259
/// grammar; rejects trailing garbage). Errors name the byte offset of the
/// first problem. Plain recursive descent: stack depth tracks the value
/// nesting, which is ≤ 4 for every exporter in this crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = *b.get(*pos + 1).ok_or("escape at end of input")?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        let hex = b.get(*pos + 2..*pos + 6).ok_or("short \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if int_digits > 1 && b[start + usize::from(b[start] == b'-')] == b'0' {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}", pos = *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}", pos = *pos));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_escaped_objects() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\\c\nd").u64("n", 42).i64("i", -7).f64("f", 0.5, 6);
        o.raw("nested", "{\"x\":1}");
        let s = o.finish();
        assert_eq!(
            s,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"i\":-7,\"f\":0.500000,\"nested\":{\"x\":1}}"
        );
        validate_json(&s).expect("writer output must validate");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array_of(Vec::new()), "[]");
        validate_json("{}").unwrap();
        validate_json("[]").unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN, 3);
        let s = o.finish();
        assert_eq!(s, "{\"x\":null}");
        validate_json(&s).unwrap();
    }

    #[test]
    fn validator_accepts_good_json() {
        for good in [
            "0",
            "-1.5e10",
            "\"hi\\u00e9\"",
            "true",
            "[1,2,3]",
            "{\"a\":[{\"b\":null}],\"c\":false}",
            "  { \"k\" : \"v\" }  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "{}{}",
            "{\"a\":1} trailing",
            "NaN",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn array_of_joins_values() {
        let s = array_of(vec!["1".to_string(), "{\"a\":2}".to_string()]);
        assert_eq!(s, "[1,{\"a\":2}]");
        validate_json(&s).unwrap();
    }
}
