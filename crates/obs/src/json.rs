//! Minimal hand-rolled JSON support: an escaping object/array writer used by
//! every exporter (and by `csb_core::PhaseTimings::to_json`), plus a strict
//! validator the tests use to check exporter output without a JSON parser
//! dependency.

/// Escapes `s` into `out` as JSON string *contents* (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental JSON object writer. Fields appear in insertion order;
/// [`JsonObject::finish`] closes the object and returns the string.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field with fixed decimal places (non-finite values
    /// serialize as `null`, which JSON requires).
    pub fn f64(&mut self, k: &str, v: f64, decimals: usize) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.decimals$}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes an iterator of already-serialized JSON values as an array.
pub fn array_of<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Validates that `s` is exactly one well-formed JSON value (RFC 8259
/// grammar; rejects trailing garbage). Errors name the byte offset of the
/// first problem. Plain recursive descent: stack depth tracks the value
/// nesting, which is ≤ 4 for every exporter in this crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = *b.get(*pos + 1).ok_or("escape at end of input")?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        let hex = b.get(*pos + 2..*pos + 6).ok_or("short \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if int_digits > 1 && b[start + usize::from(b[start] == b'-')] == b'0' {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}", pos = *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}", pos = *pos));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

/// A parsed JSON value. Numbers are `f64` (exact for the integer ranges the
/// exporters emit, up to 2⁵³); object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// A string (escapes decoded)
    Str(String),
    /// An array
    Arr(Vec<JsonValue>),
    /// An object, in document order
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value (RFC 8259, same grammar as
/// [`validate_json`]) into a [`JsonValue`] tree. Used by the span-profile
/// reader to load traces without a parser dependency.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = build_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn build_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => build_object(b, pos),
        Some(b'[') => build_array(b, pos),
        Some(b'"') => build_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            parse_number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(JsonValue::Num).map_err(|e| e.to_string())
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn build_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    parse_string(b, pos)?;
    // Contents between the quotes, escapes still encoded.
    let raw = std::str::from_utf8(&b[start + 1..*pos - 1]).map_err(|e| e.to_string())?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000C}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                // Decode surrogate pairs; the validator already guaranteed
                // four hex digits per escape.
                let decoded = if (0xD800..0xDC00).contains(&cp) {
                    let (bs, u2) = (chars.next(), chars.next());
                    if bs != Some('\\') || u2 != Some('u') {
                        return Err("lone high surrogate".into());
                    }
                    let hex2: String = chars.by_ref().take(4).collect();
                    let lo = u32::from_str_radix(&hex2, 16).map_err(|e| e.to_string())?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("bad low surrogate".into());
                    }
                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    cp
                };
                out.push(char::from_u32(decoded).unwrap_or('\u{FFFD}'));
            }
            _ => return Err("bad escape".into()),
        }
    }
    Ok(out)
}

fn build_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    let mut fields = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = build_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, build_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn build_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(build_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_escaped_objects() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\\c\nd").u64("n", 42).i64("i", -7).f64("f", 0.5, 6);
        o.raw("nested", "{\"x\":1}");
        let s = o.finish();
        assert_eq!(
            s,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"i\":-7,\"f\":0.500000,\"nested\":{\"x\":1}}"
        );
        validate_json(&s).expect("writer output must validate");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array_of(Vec::new()), "[]");
        validate_json("{}").unwrap();
        validate_json("[]").unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN, 3);
        let s = o.finish();
        assert_eq!(s, "{\"x\":null}");
        validate_json(&s).unwrap();
    }

    #[test]
    fn validator_accepts_good_json() {
        for good in [
            "0",
            "-1.5e10",
            "\"hi\\u00e9\"",
            "true",
            "[1,2,3]",
            "{\"a\":[{\"b\":null}],\"c\":false}",
            "  { \"k\" : \"v\" }  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "{}{}",
            "{\"a\":1} trailing",
            "NaN",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn array_of_joins_values() {
        let s = array_of(vec!["1".to_string(), "{\"a\":2}".to_string()]);
        assert_eq!(s, "[1,{\"a\":2}]");
        validate_json(&s).unwrap();
    }

    #[test]
    fn parser_builds_value_trees() {
        let v = parse_json("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true},\"s\":\"x\"}")
            .expect("must parse");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_decodes_escapes() {
        let v = parse_json("\"a\\\"b\\\\c\\nd\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "{}{}", "\"\\ud800x\""] {
            assert!(parse_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\nc").u64("n", 42).f64("f", 0.5, 3);
        let s = o.finish();
        let v = parse_json(&s).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("a\"b\nc"));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(0.5));
    }
}
