//! Subcommand implementations.

use crate::args::Args;
use csb_core::{
    seed_from_packets, GenJob, Metric, PgpbaConfig, PgskConfig, SeedBundle, VeracityJob,
};
use csb_engine::sim::{GenAlgorithm, GenJob as SimGenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};
use csb_graph::algo::PageRankConfig;
use csb_graph::io::{read_graph, write_graph};
use csb_graph::NetflowGraph;
use csb_ids::{detect, evaluate, train_thresholds};
use csb_net::assembler::FlowAssembler;
use csb_net::packet::{fmt_ip, ip};
use csb_net::pcap::{read_pcap, write_pcap};
use csb_net::traffic::attacks::AttackInjector;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb_store::{Compression, CsbError};
use std::fs::File;

type Result<T> = std::result::Result<T, CsbError>;

fn arg_err(message: impl Into<String>) -> CsbError {
    CsbError::Config(message.into())
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<()> {
    match args.command.as_str() {
        "simulate" => simulate(args),
        "seed" => seed(args),
        "generate" => generate(args),
        "campaign" => campaign_cmd(args),
        "veracity" => veracity_cmd(args),
        "compare" => crate::compare::compare_cmd(args),
        "detect" => detect_cmd(args),
        "workload" => workload_cmd(args),
        "export" => export_cmd(args),
        "import" => import_cmd(args),
        "cluster-sim" => cluster_sim(args),
        "serve" => crate::serve_cmd::serve(args),
        "submit" => crate::serve_cmd::submit(args),
        "jobs" => crate::serve_cmd::jobs(args),
        "cancel" => crate::serve_cmd::cancel(args),
        "shutdown" => crate::serve_cmd::shutdown(args),
        // `csb obs report FILE` arrives rewritten by main::normalize_obs.
        "obs-report" => obs_report(args),
        "obs" => Err(arg_err("usage: csb obs report TRACE [--top N] [--metrics FILE]")),
        other => Err(arg_err(format!("unknown command `{other}` (try `csb help`)"))),
    }
}

fn load_graph(path: &str) -> Result<NetflowGraph> {
    Ok(read_graph(File::open(path)?)?)
}

fn load_seed(path: &str) -> Result<SeedBundle> {
    let graph = load_graph(path)?;
    let analysis = csb_core::analysis::SeedAnalysis::of(&graph);
    Ok(SeedBundle { graph, analysis })
}

fn simulate(args: &Args) -> Result<()> {
    args.expect_only(&["out", "duration", "rate", "seed", "attacks"])?;
    let out = args.require("out")?;
    let duration: f64 = args.get_or("duration", 60.0)?;
    let rate: f64 = args.get_or("rate", 50.0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let attacks: bool = args.get_or("attacks", false)?;

    let sim = TrafficSim::new(TrafficSimConfig {
        duration_secs: duration,
        sessions_per_sec: rate,
        seed,
        ..TrafficSimConfig::default()
    });
    let mut trace = sim.generate();
    if attacks {
        let servers = sim.topology().servers().to_vec();
        let mut inj = AttackInjector::new(seed ^ 0xA77);
        let horizon = (duration * 1e6) as u64;
        let atk = |i: u8| ip(198, 51, 100, 10 + i);
        trace.merge(inj.syn_flood(atk(0), servers[0], 80, horizon / 8, horizon / 8, 20_000));
        trace.merge(inj.icmp_flood(atk(1), servers[1], horizon / 3, horizon / 8, 20_000));
        trace.merge(inj.host_scan(atk(2), servers[2], horizon / 2, horizon / 8, 400, 80));
        trace.merge(inj.network_scan(
            atk(3),
            ip(10, 9, 0, 1),
            200,
            22,
            2 * horizon / 3,
            horizon / 8,
        ));
        trace.sort();
    }
    write_pcap(File::create(out)?, &trace.packets)?;
    let s = trace.summary();
    println!(
        "wrote {out}: {} packets, {} hosts, {:.1} s, {} labeled attacks",
        s.packets,
        s.hosts,
        s.duration_secs,
        trace.labels.len()
    );
    Ok(())
}

/// `csb campaign`: benign traffic plus kill-chain campaigns, out to a
/// ground-truth-labeled flow store, optional KDD-style feature rows, and an
/// optional machine-readable report scoring the Section IV detector against
/// the campaign labels.
fn campaign_cmd(args: &Args) -> Result<()> {
    use csb_net::traffic::campaign::{CampaignConfig, StageKind, StageParams};
    args.expect_only(&[
        "out",
        "kdd",
        "report",
        "duration",
        "rate",
        "seed",
        "campaigns",
        "stages",
        "intensity",
        "stealth",
        "workers",
        "shards",
        "codec",
    ])?;
    let out = args.require("out")?;
    let duration: f64 = args.get_or("duration", 60.0)?;
    let rate: f64 = args.get_or("rate", 50.0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let n_campaigns: u32 = args.get_or("campaigns", 1)?;
    let intensity: f64 = args.get_or("intensity", 1.0)?;
    let stealth: f64 = args.get_or("stealth", 0.3)?;
    let workers: usize = args.get_or("workers", 1)?;
    let shards: usize = args.get_or("shards", 1)?;
    let codec = match args.get("codec") {
        None => Compression::None,
        Some(s) => Compression::parse(s)
            .ok_or_else(|| arg_err(format!("flag --codec: expected raw|columnar, got {s}")))?,
    };
    if n_campaigns == 0 {
        return Err(arg_err("--campaigns must be at least 1"));
    }
    let stage_kinds: Vec<StageKind> = match args.get("stages") {
        None => StageKind::ALL.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                StageKind::parse(s.trim()).ok_or_else(|| {
                    arg_err(format!(
                        "flag --stages: unknown stage `{s}` (expected recon, lateral, c2, exfil)"
                    ))
                })
            })
            .collect::<Result<_>>()?,
    };
    // Kill chains are scaled into the capture and staggered: each campaign
    // starts at a deterministic offset and its stages share the window the
    // nominal 4-stage chain would occupy.
    let nominal_total: f64 =
        StageKind::ALL.iter().map(|&k| StageParams::nominal(k).duration_secs).sum();
    let time_scale = (duration * 0.6 / nominal_total).min(1.0);
    let stages: Vec<StageParams> = stage_kinds
        .iter()
        .map(|&kind| {
            let nominal = StageParams::nominal(kind);
            StageParams {
                intensity: nominal.intensity * intensity,
                stealth: stealth.clamp(0.0, 1.0),
                duration_secs: nominal.duration_secs * time_scale,
                ..nominal
            }
        })
        .collect();

    let mut job = csb_core::CampaignJob::new()
        .duration_secs(duration)
        .sessions_per_sec(rate)
        .seed(seed)
        .workers(workers)
        .store(out)
        .shards(shards)
        .compression(codec);
    for id in 1..=n_campaigns {
        let start_secs = duration * 0.1 + duration * 0.8 * (id - 1) as f64 / n_campaigns as f64;
        job = job.campaign(CampaignConfig {
            id,
            seed: csb_stats::rng::derive_seed(seed, 0xCA_u64 + id as u64),
            start_secs,
            stages: stages.clone(),
        });
    }
    let outcome = job.run()?;
    println!(
        "wrote {out}: {} flows ({} labeled across {} campaign(s)), {} packets, \
         {} shard(s), {} codec",
        outcome.flows.len(),
        outcome.labeled_flows,
        n_campaigns,
        outcome.packets,
        shards.max(1),
        codec.name()
    );

    if let Some(kdd_path) = args.get("kdd") {
        let csv = csb_net::kdd::kdd_csv(&outcome.flows);
        std::fs::write(kdd_path, &csv)?;
        println!("wrote {} KDD feature rows to {kdd_path}", outcome.flows.len());
    }

    if let Some(report_path) = args.get("report") {
        // The realistic evaluation loop: thresholds trained on the benign
        // slice (ground truth makes that split exact), detector run over
        // everything, detections scored flow-by-flow against the labels.
        let benign: Vec<_> =
            outcome.flows.iter().filter(|f| !f.label.is_attack()).map(|f| f.flow).collect();
        let all: Vec<_> = outcome.flows.iter().map(|f| f.flow).collect();
        let detections = detect(&all, &train_thresholds(&benign));
        let eval = csb_ids::evaluate_flows(&outcome.flows, &detections);
        let stages_json = csb_obs::json::array_of(eval.per_stage.iter().map(|s| {
            let mut o = csb_obs::json::JsonObject::new();
            o.u64("campaign", s.campaign as u64);
            o.u64("stage", s.stage as u64);
            o.str(
                "class",
                csb_net::AttackClass::from_code(s.class).map(|c| c.kdd_name()).unwrap_or("?"),
            );
            o.u64("flows", s.flows as u64);
            o.u64("detected", s.detected as u64);
            o.finish()
        }));
        let mut obj = csb_obs::json::JsonObject::new();
        obj.str("report", "campaign");
        obj.u64("version", 1);
        obj.u64("seed", seed);
        obj.u64("campaigns", n_campaigns as u64);
        obj.u64("packets", outcome.packets as u64);
        obj.u64("flows", outcome.flows.len() as u64);
        obj.u64("labeled_flows", outcome.labeled_flows as u64);
        obj.u64("detections", detections.len() as u64);
        obj.u64("tp", eval.true_positives as u64);
        obj.u64("fp", eval.false_positives as u64);
        obj.u64("fn", eval.false_negatives as u64);
        obj.u64("tn", eval.true_negatives as u64);
        obj.f64("precision", eval.precision(), 6);
        obj.f64("recall", eval.recall(), 6);
        obj.f64("f1", eval.f1(), 6);
        obj.raw("stages", &stages_json);
        std::fs::write(report_path, obj.finish() + "\n")?;
        println!(
            "eval: precision {:.3} recall {:.3} f1 {:.3} ({} detections); report in {report_path}",
            eval.precision(),
            eval.recall(),
            eval.f1(),
            detections.len()
        );
    }
    Ok(())
}

fn seed(args: &Args) -> Result<()> {
    args.expect_only(&["pcap", "out", "filter"])?;
    let pcap = args.require("pcap")?;
    let out = args.require("out")?;
    let mut packets = read_pcap(File::open(pcap)?)?;
    if let Some(expr) = args.get("filter") {
        let filter = csb_net::Filter::parse(expr)?;
        let before = packets.len();
        packets = filter.apply(&packets);
        println!("filter {expr:?}: kept {} of {before} packets", packets.len());
    }
    let bundle = seed_from_packets(&packets);
    write_graph(File::create(out)?, &bundle.graph)?;
    println!(
        "seed {out}: {} vertices, {} edges | out-degree mean {:.2} max {} | in-bytes mean {:.0} B",
        bundle.graph.vertex_count(),
        bundle.graph.edge_count(),
        bundle.analysis.out_degree.mean(),
        bundle.analysis.out_degree.max(),
        bundle.analysis.properties.in_bytes.mean()
    );
    Ok(())
}

fn generate(args: &Args) -> Result<()> {
    args.expect_only(&[
        "seed-graph",
        "algorithm",
        "size",
        "out",
        "fraction",
        "seed",
        "trace-out",
        "metrics-out",
        "checkpoint-dir",
        "checkpoint-every",
        "resume",
        "kill-after-chunks",
        "shards",
        "codec",
        "obs-listen",
        "obs-linger-ms",
        "progress",
        "job-id",
    ])?;
    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");
    let obs_listen = args.get("obs-listen");
    let progress: bool = args.get_or("progress", false)?;
    let obs_linger_ms: u64 = args.get_or("obs-linger-ms", 0)?;
    let telemetry =
        trace_out.is_some() || metrics_out.is_some() || obs_listen.is_some() || progress;
    // Instrumentation is collected only when an export, the live endpoint,
    // or the progress ticker was requested; the disabled path costs two
    // relaxed atomic loads per probe. Telemetry never touches generator RNG
    // streams, so --out bytes are identical with or without these flags.
    if telemetry {
        csb_obs::reset();
        csb_obs::enable();
    }
    let server = match obs_listen {
        Some(addr) => {
            let srv = csb_obs::ObsServer::serve(addr, csb_obs::recorder::current())
                .map_err(|e| arg_err(format!("--obs-listen {addr}: {e}")))?;
            // Machine-parseable: CI and scripts read the bound (possibly
            // ephemeral) port from this line.
            println!("obs: serving http://{}", srv.addr());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            Some(srv)
        }
        None => None,
    };
    let sampler = telemetry.then(|| {
        csb_obs::Sampler::start(csb_obs::recorder::current(), std::time::Duration::from_millis(500))
    });
    let ticker = progress.then(start_progress_ticker);
    let bundle = load_seed(args.require("seed-graph")?)?;
    let size: u64 = args.require_parsed("size")?;
    let out = args.require("out")?;
    let rng_seed: u64 = args.get_or("seed", 42)?;
    let mut job = match args.require("algorithm")? {
        "pgpba" => {
            let fraction: f64 = args.get_or("fraction", 0.1)?;
            GenJob::pgpba(&bundle, PgpbaConfig { desired_size: size, fraction, seed: rng_seed })
        }
        "pgsk" => GenJob::pgsk(&bundle, PgskConfig { seed: rng_seed, ..PgskConfig::new(size) }),
        other => return Err(arg_err(format!("unknown algorithm {other}"))),
    };
    if let Some(id) = args.get("job-id") {
        job = job.job_id(id);
    }
    let shards: usize = args.get_or("shards", 1)?;
    let codec = match args.get("codec") {
        None => Compression::None,
        Some(s) => Compression::parse(s)
            .ok_or_else(|| arg_err(format!("flag --codec: expected raw|columnar, got {s}")))?,
    };
    let graph = match args.get("checkpoint-dir") {
        // Checkpointed runs write the binary store format directly (the text
        // writer has no durable barriers to resume from).
        Some(dir) => {
            let mut job = job.store(out).checkpoint(dir).shards(shards).compression(codec);
            job = job.checkpoint_every(args.get_or("checkpoint-every", 8)?);
            if args.get_or("resume", false)? {
                job = job.resume();
            }
            if let Some(n) = args.get("kill-after-chunks") {
                let n: u64 =
                    n.parse().map_err(|_| arg_err("flag --kill-after-chunks: not a number"))?;
                // The CLI kill hook exists for crash-recovery smoke tests: it
                // takes the whole process down, exactly like a real crash.
                job = job.kill_after_chunks(n, true);
            }
            let run = job.run()?;
            println!(
                "generated {out}: {} edges (csb-store format, target {size}; \
                 checkpoints in {dir})",
                run.edges
            );
            None
        }
        // --shards / --codec imply the binary store format too: the text
        // writer has neither shard files nor column codecs.
        None if shards > 1 || args.get("codec").is_some() => {
            let run = job.store(out).shards(shards).compression(codec).run()?;
            println!(
                "generated {out}: {} edges (csb-store format, target {size}; {} shard(s), \
                 {} codec)",
                run.edges,
                shards.max(1),
                codec.name()
            );
            None
        }
        None => {
            let run = job.run()?;
            let graph = run.graph.expect("memory runs hold the graph");
            write_graph(File::create(out)?, &graph)?;
            Some(graph)
        }
    };
    if let Some((stop, handle)) = ticker {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.join().ok();
        // One final line so short runs still show their end state.
        eprintln!("{}", csb_obs::recorder::current().status().snapshot().ticker_line());
    }
    if let Some(s) = sampler {
        let series = s.stop();
        if telemetry && !series.is_empty() {
            let peak = csb_obs::sampler::peak_rss_bytes(&series);
            if peak > 0 {
                csb_obs::obs_info!(
                    "peak RSS {:.1} MiB over {} samples",
                    peak as f64 / (1 << 20) as f64,
                    series.len()
                );
            }
        }
    }
    if let Some(srv) = server {
        // Give scrapers a window to read the final /metrics and /status.
        if obs_linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(obs_linger_ms));
        }
        srv.shutdown();
    }
    if telemetry {
        csb_obs::disable();
        // Instrumentation export is best-effort: a full disk at --trace-out
        // must not discard the generated graph that was already written.
        if let Some(path) = trace_out {
            match csb_obs::export::write_chrome_trace(path) {
                Ok(()) => {
                    println!("wrote Chrome trace to {path} (load at https://ui.perfetto.dev)")
                }
                Err(e) => eprintln!("warning: could not write Chrome trace to {path}: {e}"),
            }
        }
        if let Some(path) = metrics_out {
            match csb_obs::export::write_metrics_summary(path) {
                Ok(()) => println!("wrote metrics summary to {path}"),
                Err(e) => eprintln!("warning: could not write metrics summary to {path}: {e}"),
            }
        }
    }
    if let Some(graph) = graph {
        println!(
            "generated {out}: {} vertices, {} edges (target {size})",
            graph.vertex_count(),
            graph.edge_count()
        );
    }
    Ok(())
}

/// Spawns the `--progress` stderr ticker: a half-second heartbeat printing
/// the current recorder's status line. Returns the stop flag and the handle.
fn start_progress_ticker(
) -> (std::sync::Arc<std::sync::atomic::AtomicBool>, std::thread::JoinHandle<()>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_in = Arc::clone(&stop);
    let board = csb_obs::recorder::current().status();
    let handle = std::thread::Builder::new()
        .name("csb-progress".into())
        .spawn(move || {
            while !stop_in.load(Ordering::Relaxed) {
                // Sleep in slices so the final line lands promptly.
                for _ in 0..25 {
                    if stop_in.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                eprintln!("{}", board.snapshot().ticker_line());
            }
        })
        .expect("spawn progress ticker");
    (stop, handle)
}

/// `csb obs report TRACE [--top N] [--metrics FILE]`: folds a span trace
/// (Chrome trace-event JSON from `--trace-out`, or the events JSONL format)
/// into a per-phase self-time table, optionally followed by the top counters
/// of a `--metrics-out` summary.
fn obs_report(args: &Args) -> Result<()> {
    args.expect_only(&["trace", "top", "metrics"])?;
    let path = args.require("trace")?;
    let top: usize = args.get_or("top", 20)?;
    let text = std::fs::read_to_string(path)?;
    let spans = csb_obs::profile::parse_trace(&text)
        .map_err(|e| arg_err(format!("{path}: not a trace file: {e}")))?;
    let profile = csb_obs::profile::profile(&spans);
    print!("{}", csb_obs::profile::render_report(&profile, top));
    if let Some(mpath) = args.get("metrics") {
        let mtext = std::fs::read_to_string(mpath)?;
        let rows = csb_obs::profile::top_counters_from_summary(&mtext, 10)
            .map_err(|e| arg_err(format!("{mpath}: {e}")))?;
        print!("{}", csb_obs::profile::render_top_counters(&rows));
    }
    Ok(())
}

/// Everything `csb veracity` accepts, parsed up front into one struct: the
/// in-memory and the store mode then flow through the same [`VeracityJob`].
pub(crate) struct VeracityCliConfig {
    pub(crate) metrics: Vec<Metric>,
    pub(crate) pagerank: PageRankConfig,
    pub(crate) scan_cache_mb: Option<u64>,
    json_out: Option<String>,
}

impl VeracityCliConfig {
    /// Parses the flags shared by `veracity` and `compare`: `--metrics`, the
    /// PageRank knobs, and `--scan-cache-mb`.
    pub(crate) fn parse(args: &Args) -> Result<Self> {
        let defaults = PageRankConfig::default();
        Ok(VeracityCliConfig {
            metrics: match args.get("metrics") {
                Some(spec) => Metric::parse_list(spec)?,
                None => Metric::DEFAULT.to_vec(),
            },
            pagerank: PageRankConfig {
                damping: args.get_or("damping", defaults.damping)?,
                max_iters: args.get_or("max-iters", defaults.max_iters)?,
                tolerance: args.get_or("tolerance", defaults.tolerance)?,
            },
            scan_cache_mb: match args.get("scan-cache-mb") {
                Some(_) => Some(args.require_parsed("scan-cache-mb")?),
                None => None,
            },
            json_out: args.get("json-out").map(str::to_string),
        })
    }

    /// A [`VeracityJob`] with the parsed metric set and knobs applied; the
    /// caller attaches the two inputs.
    pub(crate) fn job<'a>(&self) -> VeracityJob<'a> {
        let mut job =
            VeracityJob::new().metrics(self.metrics.iter().copied()).pagerank_config(self.pagerank);
        if let Some(mb) = self.scan_cache_mb {
            job = job.scan_cache_mb(mb);
        }
        job
    }
}

fn veracity_cmd(args: &Args) -> Result<()> {
    args.expect_only(&[
        "seed-graph",
        "synthetic",
        "store",
        "json-out",
        "metrics",
        "damping",
        "max-iters",
        "tolerance",
        "scan-cache-mb",
    ])?;
    let cfg = VeracityCliConfig::parse(args)?;
    let stores = args.get_all("store");
    let (report, seed_label, synth_label) = if stores.is_empty() {
        let seed_path = args.require("seed-graph")?;
        let synth_path = args.require("synthetic")?;
        let seed = load_graph(seed_path)?;
        let synth = load_graph(synth_path)?;
        println!(
            "seed {}v/{}e vs synthetic {}v/{}e",
            seed.vertex_count(),
            seed.edge_count(),
            synth.vertex_count(),
            synth.edge_count()
        );
        let report = cfg.job().seed_graph(&seed).synthetic_graph(&synth).run()?;
        (report, seed_path.to_string(), synth_path.to_string())
    } else {
        // Out-of-core: score two graph store files without materializing
        // either graph (`csb veracity --store seed.csb synth.csb`).
        if args.get("seed-graph").is_some() || args.get("synthetic").is_some() {
            return Err(arg_err("--store replaces --seed-graph/--synthetic"));
        }
        let [seed_path, synth_path] = stores else {
            return Err(arg_err(format!(
                "--store takes exactly two files (seed, synthetic), got {}",
                stores.len()
            )));
        };
        for path in [seed_path, synth_path] {
            // open_scan dispatches on magic: plain store file or sharded set.
            use csb_graph::ooc::EdgeScan;
            let mut scan = csb_store::open_scan(path)?;
            println!("store {path}: {}v/{}e", scan.vertex_count()?, scan.edge_count()?);
        }
        let report = cfg.job().seed_store(seed_path).synthetic_store(synth_path).run()?;
        (report, seed_path.clone(), synth_path.clone())
    };
    for s in &report.scores {
        // The pad keeps the score column aligned through "pagerank veracity:".
        println!("{:<18} {:.6e}", format!("{} veracity:", s.metric), s.score);
    }
    if let Some(path) = &cfg.json_out {
        // `{:e}` is the shortest round-trip form, so consumers recover the
        // exact f64 scores by parsing. Keys are the metric names.
        let mut obj = csb_obs::json::JsonObject::new();
        obj.str("seed", &seed_label);
        obj.str("synthetic", &synth_label);
        for s in &report.scores {
            obj.raw(s.metric, &format!("{:e}", s.score));
        }
        std::fs::write(path, obj.finish() + "\n")?;
        println!("wrote veracity scores to {path}");
    }
    Ok(())
}

fn detect_cmd(args: &Args) -> Result<()> {
    args.expect_only(&["pcap", "train", "filter"])?;
    let mut packets = read_pcap(File::open(args.require("pcap")?)?)?;
    if let Some(expr) = args.get("filter") {
        packets = csb_net::Filter::parse(expr)?.apply(&packets);
    }
    let flows = FlowAssembler::assemble(&packets);
    let thresholds = match args.get("train") {
        Some(train_path) => {
            let train_packets = read_pcap(File::open(train_path)?)?;
            train_thresholds(&FlowAssembler::assemble(&train_packets))
        }
        None => train_thresholds(&flows),
    };
    let detections = detect(&flows, &thresholds);
    println!("{} flows analyzed, {} alarms:", flows.len(), detections.len());
    for d in &detections {
        println!("  {:>12} at {}", d.kind.to_string(), fmt_ip(d.ip));
    }
    // If the capture itself was produced by `csb simulate --attacks true`
    // there are no labels in the pcap; evaluation is only meaningful with
    // labels, so report detections only.
    let _ = evaluate(&detections, &[]);
    Ok(())
}

fn workload_cmd(args: &Args) -> Result<()> {
    args.expect_only(&["graph", "node", "edge", "path", "subgraph", "seed"])?;
    let graph = load_graph(args.require("graph")?)?;
    let spec = csb_workloads::WorkloadSpec {
        node_queries: args.get_or("node", 200)?,
        edge_queries: args.get_or("edge", 50)?,
        path_queries: args.get_or("path", 50)?,
        subgraph_queries: args.get_or("subgraph", 10)?,
        seed: args.get_or("seed", 0xB5)?,
    };
    let report = csb_workloads::run_workload(&graph, &spec);
    println!(
        "dataset: {} vertices / {} edges; {} queries in {:.3} s ({:.0} q/s)",
        graph.vertex_count(),
        graph.edge_count(),
        report.total_queries(),
        report.total_secs,
        report.qps()
    );
    for f in &report.families {
        println!(
            "  {:>8}: {:>6} queries, mean {:>9.1} us, max {:>9.1} us",
            f.family,
            f.latency_micros.count(),
            f.latency_micros.mean(),
            f.latency_micros.max()
        );
    }
    Ok(())
}

fn export_cmd(args: &Args) -> Result<()> {
    args.expect_only(&["graph", "flows", "out", "duration", "seed", "format"])?;
    let out = args.require("out")?;
    // `--format kdd` reads a labeled flow store (`--flows`), not a graph:
    // feature rows need the per-flow ground-truth labels a graph cannot carry.
    if args.get("format") == Some("kdd") {
        let flows_path = args.require("flows").map_err(|_| {
            arg_err(
                "--format kdd exports a labeled flow store: use --flows FILE (a store \
                     written by `csb campaign` or `save_labeled_flows`)",
            )
        })?;
        let flows = csb_store::load_labeled_flows(flows_path)?;
        std::fs::write(out, csb_net::kdd::kdd_csv(&flows))?;
        let labeled = flows.iter().filter(|f| f.label.is_attack()).count();
        println!(
            "exported {} KDD feature rows ({labeled} attack-labeled) from {flows_path} to {out}",
            flows.len()
        );
        return Ok(());
    }
    if args.get("flows").is_some() {
        return Err(arg_err("--flows applies only to --format kdd"));
    }
    let graph = load_graph(args.require("graph")?)?;
    let duration: f64 = args.get_or("duration", 60.0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    match args.get("format").unwrap_or("nf5") {
        "nf5" => {
            let flows = csb_workloads::replay_flows(&graph, duration, seed);
            csb_net::netflow_v5::write_netflow_v5(File::create(out)?, &flows)?;
            println!(
                "exported {} flows over a {duration:.0} s replay window to {out} (NetFlow v5)",
                flows.len()
            );
        }
        "store" => {
            csb_store::save_graph(out, &graph)?;
            println!(
                "exported {} vertices, {} edges to {out} (csb-store graph)",
                graph.vertex_count(),
                graph.edge_count()
            );
        }
        "store-flows" => {
            let flows = csb_workloads::replay_flows(&graph, duration, seed);
            csb_store::save_flows(out, &flows)?;
            println!(
                "exported {} flows over a {duration:.0} s replay window to {out} (csb-store)",
                flows.len()
            );
        }
        other => {
            return Err(arg_err(format!(
                "unknown export format `{other}` (expected nf5, store, store-flows, or kdd)"
            )))
        }
    }
    Ok(())
}

fn import_cmd(args: &Args) -> Result<()> {
    args.expect_only(&["store", "out", "expect"])?;
    let store_path = args.require("store")?;
    let out = args.require("out")?;
    let graph = csb_store::load_graph(store_path)?;
    if let Some(expect_path) = args.get("expect") {
        let expected = load_graph(expect_path)?;
        let same = expected.vertex_data() == graph.vertex_data()
            && expected.edge_sources() == graph.edge_sources()
            && expected.edge_targets() == graph.edge_targets()
            && expected.edge_data() == graph.edge_data();
        if !same {
            return Err(CsbError::Mismatch(format!(
                "store {store_path} does not match {expect_path}"
            )));
        }
        println!("store matches {expect_path}");
    }
    write_graph(File::create(out)?, &graph)?;
    println!(
        "imported {} vertices, {} edges from {store_path} to {out}",
        graph.vertex_count(),
        graph.edge_count()
    );
    Ok(())
}

fn cluster_sim(args: &Args) -> Result<()> {
    args.expect_only(&["algorithm", "edges", "nodes", "fraction", "seed-edges"])?;
    let edges: u64 = args.require_parsed("edges")?;
    let nodes: usize = args.get_or("nodes", 60)?;
    let seed_edges: u64 = args.get_or("seed-edges", 1_940_814)?;
    let algorithm = match args.require("algorithm")? {
        "pgpba" => GenAlgorithm::Pgpba { fraction: args.get_or("fraction", 2.0)? },
        "pgsk" => GenAlgorithm::Pgsk,
        other => return Err(arg_err(format!("unknown algorithm {other}"))),
    };
    let sim = SimCluster::new(ClusterConfig::shadow_ii(nodes), CostModel::default());
    let r = sim.simulate(&SimGenJob { algorithm, edges, seed_edges, with_properties: true });
    println!("cluster: {nodes} Shadow II nodes (12 executor cores each)");
    println!(
        "total {:.1} s = compute {:.1} + shuffle {:.1} + barriers {:.1} (+{:.0} s job overhead)",
        r.total_secs,
        r.compute_secs,
        r.shuffle_secs,
        r.barrier_secs,
        sim.model().job_overhead_secs
    );
    println!(
        "throughput {:.2e} edges/s | {:.1} GB/node | {} iterations",
        r.throughput_eps, r.memory_per_node_gb, r.iterations
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("parse")
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&args(&["frobnicate"])).expect_err("unknown");
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn full_cli_pipeline_over_temp_files() {
        let dir = std::env::temp_dir().join(format!("csb-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "10", "--rate", "20"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path, "--filter", "tcp or udp"]))
            .expect("seed");
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "2000",
            "--out",
            &synth_path,
        ]))
        .expect("generate");
        run(&args(&["veracity", "--seed-graph", &seed_path, "--synthetic", &synth_path]))
            .expect("veracity");
        run(&args(&["detect", "--pcap", &pcap])).expect("detect");
        run(&args(&[
            "workload",
            "--graph",
            &synth_path,
            "--node",
            "20",
            "--edge",
            "5",
            "--path",
            "5",
            "--subgraph",
            "2",
        ]))
        .expect("workload");
        let nf_path = dir.join("flows.nf5").to_string_lossy().into_owned();
        run(&args(&["export", "--graph", &synth_path, "--out", &nf_path, "--duration", "10"]))
            .expect("export");
        let nf_flows =
            csb_net::netflow_v5::read_netflow_v5(std::fs::File::open(&nf_path).expect("open"))
                .expect("nf5 read");
        assert!(!nf_flows.is_empty());
        run(&args(&["cluster-sim", "--algorithm", "pgsk", "--edges", "1000000000"]))
            .expect("cluster-sim");

        // Generated artifacts exist and round-trip.
        let g = load_graph(&synth_path).expect("load synth");
        assert!(g.edge_count() >= 2000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_writes_trace_and_metrics() {
        let _guard = csb_obs::span::test_lock();
        let dir = std::env::temp_dir().join(format!("csb-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        let metrics_path = dir.join("metrics.json").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "2000",
            "--out",
            &synth_path,
            "--trace-out",
            &trace_path,
            "--metrics-out",
            &metrics_path,
        ]))
        .expect("generate with exports");

        let trace = std::fs::read_to_string(&trace_path).expect("trace written");
        csb_obs::json::validate_json(&trace).expect("trace is valid JSON");
        assert!(trace.contains("\"name\":\"pgpba.grow\""), "grow span present");
        assert!(trace.contains("\"name\":\"attach\""), "attach span present");
        assert!(trace.contains("\"name\":\"attach.chunk\""), "per-worker spans present");
        let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
        csb_obs::json::validate_json(&metrics).expect("metrics are valid JSON");
        assert!(metrics.contains("\"attach.edges\""), "attach counter exported");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_report_folds_a_generated_trace() {
        let _guard = csb_obs::span::test_lock();
        let dir = std::env::temp_dir().join(format!("csb-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        let metrics_path = dir.join("metrics.json").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "2000",
            "--out",
            &synth_path,
            "--trace-out",
            &trace_path,
            "--metrics-out",
            &metrics_path,
            "--job-id",
            "report-test",
        ]))
        .expect("generate with exports");

        // The report command parses and folds the trace it just wrote, with
        // and without the optional counters.
        run(&args(&["obs-report", "--trace", &trace_path, "--top", "5"])).expect("report");
        run(&args(&["obs-report", "--trace", &trace_path, "--metrics", &metrics_path]))
            .expect("report with counters");
        let err = run(&args(&["obs-report", "--trace", &seed_path])).expect_err("not a trace");
        assert!(err.to_string().contains("trace"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_store_import_round_trips() {
        let dir = std::env::temp_dir().join(format!("csb-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let store_path = dir.join("seed.csbstore").to_string_lossy().into_owned();
        let back_path = dir.join("back.graph").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "6", "--rate", "12"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&["export", "--graph", &seed_path, "--out", &store_path, "--format", "store"]))
            .expect("export store");
        // Import verifies equality against the original and writes it back
        // as a text graph; the text graphs must then be identical files.
        run(&args(&[
            "import",
            "--store",
            &store_path,
            "--out",
            &back_path,
            "--expect",
            &seed_path,
        ]))
        .expect("import");
        let original = std::fs::read_to_string(&seed_path).expect("read original");
        let back = std::fs::read_to_string(&back_path).expect("read imported");
        assert_eq!(original, back, "store round trip must preserve the text graph");

        // Flow-store export round-trips through the reader too.
        let flows_path = dir.join("flows.csbstore").to_string_lossy().into_owned();
        run(&args(&[
            "export",
            "--graph",
            &seed_path,
            "--out",
            &flows_path,
            "--format",
            "store-flows",
            "--duration",
            "5",
        ]))
        .expect("export store-flows");
        let flows = csb_store::load_flows(&flows_path).expect("load flows");
        assert!(!flows.is_empty());

        // Mismatched --expect is an error.
        let err = run(&args(&[
            "import",
            "--store",
            &store_path,
            "--out",
            &back_path,
            "--expect",
            &back_path,
        ]));
        assert!(err.is_ok(), "identical graph under a different name still matches");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_writes_store_kdd_and_report() {
        let dir = std::env::temp_dir().join(format!("csb-cli-camp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = dir.join("flows.csbstore").to_string_lossy().into_owned();
        let kdd = dir.join("rows.csv").to_string_lossy().into_owned();
        let report = dir.join("report.json").to_string_lossy().into_owned();

        run(&args(&[
            "campaign",
            "--out",
            &store,
            "--kdd",
            &kdd,
            "--report",
            &report,
            "--duration",
            "30",
            "--rate",
            "10",
            "--seed",
            "5",
            "--workers",
            "3",
            "--codec",
            "columnar",
        ]))
        .expect("campaign");

        let flows = csb_store::load_labeled_flows(&store).expect("load labeled store");
        let labeled = flows.iter().filter(|f| f.label.is_attack()).count();
        assert!(labeled > 0, "campaign must label flows");
        assert!(flows.len() > labeled, "benign flows must be present too");

        let csv = std::fs::read_to_string(&kdd).expect("kdd written");
        let mut lines = csv.lines();
        assert_eq!(lines.next().expect("header"), csb_net::kdd::kdd_header());
        assert_eq!(lines.count(), flows.len(), "one row per flow");

        let json = std::fs::read_to_string(&report).expect("report written");
        csb_obs::json::validate_json(&json).expect("report is valid JSON");
        for key in ["\"report\":\"campaign\"", "\"precision\":", "\"recall\":", "\"stages\":"] {
            assert!(json.contains(key), "report missing {key}: {json}");
        }

        // `csb export --format kdd` over the store reproduces the same rows.
        let kdd2 = dir.join("rows2.csv").to_string_lossy().into_owned();
        run(&args(&["export", "--flows", &store, "--out", &kdd2, "--format", "kdd"]))
            .expect("export kdd");
        assert_eq!(csv, std::fs::read_to_string(&kdd2).expect("read rows2"));

        // kdd without --flows is a usage error that explains the flag.
        let err = run(&args(&["export", "--out", &kdd2, "--format", "kdd"]))
            .expect_err("missing --flows");
        assert!(err.to_string().contains("--flows"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_is_worker_and_shard_invariant() {
        let dir = std::env::temp_dir().join(format!("csb-cli-campinv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let single = dir.join("a.csbstore").to_string_lossy().into_owned();
        let sharded = dir.join("b.csbset").to_string_lossy().into_owned();
        let base = |out: &str, extra: &[&str]| {
            let mut argv =
                vec!["campaign", "--out", out, "--duration", "20", "--rate", "8", "--seed", "9"];
            argv.extend_from_slice(extra);
            run(&args(&argv)).expect("campaign");
        };
        base(&single, &["--workers", "1"]);
        base(&sharded, &["--workers", "4", "--shards", "3", "--codec", "columnar"]);
        let a = csb_store::load_labeled_flows(&single).expect("load single");
        let b = csb_store::load_labeled_flows(&sharded).expect("load sharded");
        assert_eq!(a, b, "worker count and shard layout must not change the stream");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_rejects_unknown_format() {
        let err = run(&args(&[
            "export",
            "--graph",
            "/nonexistent",
            "--out",
            "/dev/null",
            "--format",
            "parquet",
        ]))
        .expect_err("bad format or missing file");
        let msg = err.to_string();
        assert!(msg.contains("parquet") || msg.contains("No such file"), "got: {msg}");
    }

    #[test]
    fn generate_rejects_bad_algorithm() {
        let dir = std::env::temp_dir().join(format!("csb-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        run(&args(&["simulate", "--out", &pcap, "--duration", "5", "--rate", "10"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        let err = run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "magic",
            "--size",
            "10",
            "--out",
            "/dev/null",
        ]))
        .expect_err("bad algorithm");
        assert!(err.to_string().contains("magic"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn typo_flags_are_rejected() {
        let err = run(&args(&["simulate", "--otu", "x"])).expect_err("typo");
        assert!(err.to_string().contains("--otu"));
    }

    #[test]
    fn checkpointed_generate_matches_plain_store_export() {
        let dir = std::env::temp_dir().join(format!("csb-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();
        let plain_store = dir.join("plain.csbstore").to_string_lossy().into_owned();
        let ckpt_store = dir.join("ckpt.csbstore").to_string_lossy().into_owned();
        let ckpt_dir = dir.join("ckpt").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        // Reference bytes: in-memory generate, then export as a store file.
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "3000",
            "--out",
            &synth_path,
        ]))
        .expect("generate");
        run(&args(&["export", "--graph", &synth_path, "--out", &plain_store, "--format", "store"]))
            .expect("export store");
        // Checkpointed generate writes the store format directly.
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "3000",
            "--out",
            &ckpt_store,
            "--checkpoint-dir",
            &ckpt_dir,
            "--checkpoint-every",
            "1",
        ]))
        .expect("checkpointed generate");
        assert_eq!(
            std::fs::read(&plain_store).expect("read plain"),
            std::fs::read(&ckpt_store).expect("read checkpointed"),
            "checkpointed store bytes must match the export path"
        );
        // A completed run leaves no manifest, so --resume falls back to a
        // fresh (and therefore identical) run.
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "3000",
            "--out",
            &ckpt_store,
            "--checkpoint-dir",
            &ckpt_dir,
            "--resume",
            "true",
        ]))
        .expect("resume without a manifest");
        assert_eq!(
            std::fs::read(&plain_store).expect("read plain"),
            std::fs::read(&ckpt_store).expect("read re-run"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_columnar_generate_scores_identically_to_single_file() {
        let dir = std::env::temp_dir().join(format!("csb-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let single = dir.join("single.csbstore").to_string_lossy().into_owned();
        let sharded = dir.join("sharded.csbshards").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        let generate = |out: &str, extra: &[&str]| {
            let mut argv = vec![
                "generate",
                "--seed-graph",
                &seed_path,
                "--algorithm",
                "pgpba",
                "--size",
                "3000",
                "--out",
                out,
            ];
            argv.extend_from_slice(extra);
            run(&args(&argv)).expect("generate");
        };
        // --codec alone (even "raw") opts into the store format.
        generate(&single, &["--codec", "raw"]);
        generate(&sharded, &["--shards", "3", "--codec", "columnar"]);
        for i in 0..3 {
            assert!(dir.join(format!("sharded.csbshards.s{i}")).is_file(), "shard {i} missing");
        }

        // Same logical graph, and the compressed shard set is smaller.
        let a = csb_store::load_graph(&single).expect("load single");
        let b = csb_store::load_graph(&sharded).expect("load sharded");
        assert_eq!(a.edge_sources(), b.edge_sources());
        assert_eq!(a.edge_targets(), b.edge_targets());
        assert_eq!(a.edge_data(), b.edge_data());
        let single_bytes = std::fs::metadata(&single).expect("meta").len();
        let shard_bytes: u64 = (0..3)
            .map(|i| {
                std::fs::metadata(dir.join(format!("sharded.csbshards.s{i}"))).expect("meta").len()
            })
            .sum();
        assert!(
            shard_bytes * 2 < single_bytes,
            "columnar shards ({shard_bytes} B) should be well under half the raw store \
             ({single_bytes} B)"
        );

        // veracity --store accepts either layout and scores bit-identically.
        run(&args(&["veracity", "--store", &single, &sharded])).expect("veracity mixed layouts");
        let score = |seed: &str, synth: &str| {
            csb_core::VeracityJob::new()
                .seed_store(seed)
                .synthetic_store(synth)
                .run()
                .expect("store veracity")
        };
        let v1 = score(&single, &single);
        let v2 = score(&single, &sharded);
        for metric in ["degree", "pagerank"] {
            assert_eq!(
                v1.score(metric).expect("scored").to_bits(),
                v2.score(metric).expect("scored").to_bits(),
                "{metric} must be layout-independent"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn veracity_store_mode_matches_in_memory_scores() {
        let dir = std::env::temp_dir().join(format!("csb-cli-vstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let store_a = dir.join("a.csbstore").to_string_lossy().into_owned();
        let store_b = dir.join("b.csbstore").to_string_lossy().into_owned();
        let json_path = dir.join("scores.json").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        // Two small PGPBA runs with different RNG seeds, straight to the
        // store format (the checkpointed path writes .csbstore).
        for (store, rng_seed) in [(&store_a, "42"), (&store_b, "43")] {
            let ckpt = dir.join(format!("ckpt-{rng_seed}")).to_string_lossy().into_owned();
            run(&args(&[
                "generate",
                "--seed-graph",
                &seed_path,
                "--algorithm",
                "pgpba",
                "--size",
                "2000",
                "--seed",
                rng_seed,
                "--out",
                store,
                "--checkpoint-dir",
                &ckpt,
            ]))
            .expect("generate to store");
        }
        run(&args(&["veracity", "--store", &store_a, &store_b, "--json-out", &json_path]))
            .expect("veracity --store");

        // The JSON output parses and carries the exact scores: `{:e}` is the
        // shortest round-trip form, so parsing recovers the same bits the
        // in-memory veracity computes on the loaded graphs.
        let json = std::fs::read_to_string(&json_path).expect("json written");
        csb_obs::json::validate_json(&json).expect("scores are valid JSON");
        let field = |name: &str| -> f64 {
            let at = json.find(&format!("\"{name}\":")).expect("field present") + name.len() + 3;
            json[at..].split([',', '}']).next().expect("value").parse().expect("score parses")
        };
        let ga = csb_store::load_graph(&store_a).expect("load a");
        let gb = csb_store::load_graph(&store_b).expect("load b");
        let mem = csb_core::VeracityJob::new()
            .seed_graph(&ga)
            .synthetic_graph(&gb)
            .run()
            .expect("in-memory veracity");
        assert_eq!(field("degree").to_bits(), mem.score("degree").expect("scored").to_bits());
        assert_eq!(field("pagerank").to_bits(), mem.score("pagerank").expect("scored").to_bits());

        // Wrong arity and mixed modes are usage errors.
        let err = run(&args(&["veracity", "--store", &store_a])).expect_err("one file");
        assert!(err.to_string().contains("two files"), "got: {err}");
        let err =
            run(&args(&["veracity", "--store", &store_a, &store_b, "--seed-graph", &seed_path]))
                .expect_err("mixed modes");
        assert!(err.to_string().contains("--store replaces"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn veracity_honors_pagerank_flags() {
        let dir = std::env::temp_dir().join(format!("csb-cli-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();
        run(&args(&["simulate", "--out", &pcap, "--duration", "8", "--rate", "15"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "2000",
            "--out",
            &synth_path,
        ]))
        .expect("generate");
        run(&args(&[
            "veracity",
            "--seed-graph",
            &seed_path,
            "--synthetic",
            &synth_path,
            "--damping",
            "0.5",
            "--max-iters",
            "40",
            "--tolerance",
            "1e-7",
        ]))
        .expect("veracity with PageRank flags");
        let err = run(&args(&[
            "veracity",
            "--seed-graph",
            &seed_path,
            "--synthetic",
            &synth_path,
            "--damping",
            "not-a-number",
        ]))
        .expect_err("bad damping");
        assert!(err.to_string().contains("damping"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn veracity_metrics_and_cache_flags() {
        let dir = std::env::temp_dir().join(format!("csb-cli-vmet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let synth_path = dir.join("synth.graph").to_string_lossy().into_owned();
        let json_path = dir.join("scores.json").to_string_lossy().into_owned();
        run(&args(&["simulate", "--out", &pcap, "--duration", "6", "--rate", "12"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&[
            "generate",
            "--seed-graph",
            &seed_path,
            "--algorithm",
            "pgpba",
            "--size",
            "1500",
            "--out",
            &synth_path,
        ]))
        .expect("generate");

        // The full metric suite lands in the JSON report, one key per metric.
        run(&args(&[
            "veracity",
            "--seed-graph",
            &seed_path,
            "--synthetic",
            &synth_path,
            "--metrics",
            "all",
            "--json-out",
            &json_path,
        ]))
        .expect("veracity --metrics all");
        let json = std::fs::read_to_string(&json_path).expect("json written");
        csb_obs::json::validate_json(&json).expect("scores are valid JSON");
        for m in csb_core::Metric::ALL {
            assert!(json.contains(&format!("\"{}\":", m.name())), "missing {}", m.name());
        }

        // Store mode accepts a metric subset and an explicit scan cache.
        let store_a = dir.join("a.csbstore").to_string_lossy().into_owned();
        let store_b = dir.join("b.csbstore").to_string_lossy().into_owned();
        let seed_graph = load_graph(&seed_path).expect("load seed");
        let synth_graph = load_graph(&synth_path).expect("load synth");
        csb_store::save_graph(&store_a, &seed_graph).expect("save a");
        csb_store::save_graph(&store_b, &synth_graph).expect("save b");
        run(&args(&[
            "veracity",
            "--store",
            &store_a,
            &store_b,
            "--metrics",
            "degree,clustering",
            "--scan-cache-mb",
            "8",
            "--json-out",
            &json_path,
        ]))
        .expect("veracity --store with subset");
        let json = std::fs::read_to_string(&json_path).expect("json written");
        assert!(json.contains("\"degree\":") && json.contains("\"clustering\":"));
        assert!(!json.contains("\"pagerank\":"), "unrequested metric leaked: {json}");

        // Unknown metrics and malformed cache sizes are usage errors.
        let err = run(&args(&[
            "veracity",
            "--seed-graph",
            &seed_path,
            "--synthetic",
            &synth_path,
            "--metrics",
            "degree,bogus",
        ]))
        .expect_err("unknown metric");
        assert!(err.to_string().contains("bogus"), "got: {err}");
        let err = run(&args(&[
            "veracity",
            "--seed-graph",
            &seed_path,
            "--synthetic",
            &synth_path,
            "--scan-cache-mb",
            "lots",
        ]))
        .expect_err("bad cache size");
        assert!(err.to_string().contains("scan-cache-mb"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
