//! `csb` — the command-line front end of the suite, mirroring the paper's
//! released benchmarking tool: simulate captures, build seeds, generate
//! synthetic property-graphs, score veracity, and run the Section IV
//! detector.

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
csb — property-graph synthetic data generation for IDS benchmarking

USAGE:
    csb <COMMAND> [--flag value ...]

COMMANDS:
    simulate     Simulate an enterprise capture and write it as PCAP
                 --out FILE [--duration SECS=60] [--rate SESSIONS/S=50]
                 [--seed N=1] [--attacks true]
    seed         Build the seed property-graph from a PCAP capture
                 --pcap FILE --out FILE [--filter EXPR]
                 (EXPR is tcpdump-like: \"tcp and dst port 80\", \"not icmp\")
    generate     Grow a synthetic property-graph from a seed graph
                 --seed-graph FILE --algorithm pgpba|pgsk --size EDGES
                 --out FILE [--fraction F=0.1] [--seed N=42]
                 [--trace-out FILE] [--metrics-out FILE]
                 [--checkpoint-dir DIR] [--checkpoint-every CHUNKS=8]
                 [--resume true] [--kill-after-chunks N]
                 [--shards N=1] [--codec raw|columnar]
                 (trace-out writes a Chrome trace-event JSON for Perfetto;
                 metrics-out writes the csb-obs counter/histogram summary;
                 checkpoint-dir writes --out in the binary csb-store format
                 with durable barriers — a killed run re-invoked with
                 --resume true continues from the last barrier and produces
                 a byte-identical file; kill-after-chunks aborts the process
                 after N store chunks, for crash-recovery testing;
                 shards > 1 splits the store across N files behind a
                 shard-set manifest written by parallel workers, and
                 codec columnar writes compressed format-v2 chunks —
                 both imply the binary store format for --out)
    veracity     Score a synthetic graph against its seed
                 --seed-graph FILE --synthetic FILE
                 [--damping F=0.85] [--max-iters N=100] [--tolerance F]
                 (the PageRank knobs used by the pagerank veracity score)
    detect       Run the NetFlow anomaly detector over a capture
                 --pcap FILE [--train FILE] [--filter EXPR]
    workload     Run the node/edge/path/sub-graph query workload on a graph
                 --graph FILE [--node N] [--edge N] [--path N] [--subgraph N]
    export       Export a graph: replayed NetFlow v5 stream or binary store
                 --graph FILE --out FILE [--format nf5|store|store-flows]
                 [--duration SECS=60] [--seed N=1]
                 (nf5 and store-flows replay the graph as flows; store writes
                 the chunked columnar graph format `csb import` reads back)
    import       Load a csb-store graph file and write it as a text graph
                 --store FILE --out FILE [--expect FILE]
                 (--expect verifies the store matches an existing text graph)
    cluster-sim  Project a generation job onto the simulated Shadow II cluster
                 --algorithm pgpba|pgsk --edges N [--nodes N=60]
                 [--fraction F=2] [--seed-edges N=1940814]

Set CSB_LOG=warn|info|debug for leveled diagnostics on stderr (silent when
unset).

Run `csb <COMMAND>` with missing flags to see what is required.
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let code = match Args::parse(&raw) {
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
        Ok(args) => match commands::run(&args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    };
    std::process::exit(code);
}
