//! `csb` — the command-line front end of the suite, mirroring the paper's
//! released benchmarking tool: simulate captures, build seeds, generate
//! synthetic property-graphs, score veracity, and run the Section IV
//! detector.

mod args;
mod commands;
mod compare;
mod serve_cmd;

use args::Args;

const USAGE: &str = "\
csb — property-graph synthetic data generation for IDS benchmarking

USAGE:
    csb <COMMAND> [--flag value ...]

COMMANDS:
    simulate     Simulate an enterprise capture and write it as PCAP
                 --out FILE [--duration SECS=60] [--rate SESSIONS/S=50]
                 [--seed N=1] [--attacks true]
    campaign     Simulate benign traffic plus multi-stage attack campaigns
                 and write ground-truth-labeled flows
                 --out FILE [--kdd FILE] [--report FILE]
                 [--duration SECS=60] [--rate SESSIONS/S=50] [--seed N=1]
                 [--campaigns N=1] [--stages LIST=recon,lateral,c2,exfil]
                 [--intensity F=1] [--stealth F=0.3]
                 [--workers N=1] [--shards N=1] [--codec raw|columnar]
                 (each campaign walks the kill chain — recon, lateral
                 movement, C2 beaconing, exfiltration — over the simulated
                 topology; --out gets the labeled flow store (sharded when
                 --shards > 1), --kdd NSL-KDD-style feature rows, and
                 --report a JSON report scoring the Section IV detector
                 against the campaign ground truth; output is byte-identical
                 for every --workers count)
    seed         Build the seed property-graph from a PCAP capture
                 --pcap FILE --out FILE [--filter EXPR]
                 (EXPR is tcpdump-like: \"tcp and dst port 80\", \"not icmp\")
    generate     Grow a synthetic property-graph from a seed graph
                 --seed-graph FILE --algorithm pgpba|pgsk --size EDGES
                 --out FILE [--fraction F=0.1] [--seed N=42]
                 [--trace-out FILE] [--metrics-out FILE]
                 [--checkpoint-dir DIR] [--checkpoint-every CHUNKS=8]
                 [--resume true] [--kill-after-chunks N]
                 [--shards N=1] [--codec raw|columnar]
                 [--obs-listen ADDR] [--obs-linger-ms MS=0]
                 [--progress true] [--job-id ID]
                 (trace-out writes a Chrome trace-event JSON for Perfetto;
                 metrics-out writes the csb-obs counter/histogram summary;
                 checkpoint-dir writes --out in the binary csb-store format
                 with durable barriers — a killed run re-invoked with
                 --resume true continues from the last barrier and produces
                 a byte-identical file; kill-after-chunks aborts the process
                 after N store chunks, for crash-recovery testing;
                 shards > 1 splits the store across N files behind a
                 shard-set manifest written by parallel workers, and
                 codec columnar writes compressed format-v2 chunks —
                 both imply the binary store format for --out;
                 obs-listen serves live Prometheus text at GET /metrics and
                 job progress JSON at GET /status on ADDR, e.g.
                 127.0.0.1:9184, or port 0 for an ephemeral port printed as
                 `obs: serving http://...`; obs-linger-ms keeps the endpoint
                 up that long after the run so scrapers catch the final
                 state; progress prints a one-line status ticker to stderr;
                 job-id names the job in /status and the ticker)
    obs          Inspect observability artifacts
                 report TRACE [--top N=20] [--metrics FILE]
                 (folds a trace written by --trace-out — Chrome JSON or
                 events JSONL — into a per-phase self-time profile; with
                 --metrics, also prints top counters from a --metrics-out
                 summary)
    veracity     Score a synthetic graph against its seed
                 --seed-graph FILE --synthetic FILE | --store SEED SYNTH
                 [--metrics LIST=degree,pagerank] [--json-out FILE]
                 [--damping F=0.85] [--max-iters N=100] [--tolerance F]
                 [--scan-cache-mb N]
                 (LIST picks from degree, pagerank, clustering,
                 assortativity, spectral, mmd_degree, mmd_pagerank — or the
                 shorthands mmd and all; --store scores two store files out
                 of core and --scan-cache-mb caps that scan cache, also
                 settable via CSB_SCAN_CACHE_MB; the PageRank knobs drive the
                 pagerank and mmd_pagerank scores)
    compare      Score the whole generator lineup against one seed graph:
                 the 7 baseline models (ER, WS, BA, Chung-Lu, BTER, SBM,
                 R-MAT) plus PGPBA and PGSK, at matched scale
                 --seed-graph FILE | --seed-store FILE
                 [--size-mult N=8] [--seed N=42] [--metrics LIST=all]
                 [--store NAME=PATH ...] [--out REPORT.json] [--smoke true]
                 [--damping F] [--max-iters N] [--tolerance F]
                 [--scan-cache-mb N]
                 (--store adds pre-generated store files to the lineup,
                 scored out of core; --out writes the machine-readable
                 comparison report; --smoke shrinks the scale for CI)
    detect       Run the NetFlow anomaly detector over a capture
                 --pcap FILE [--train FILE] [--filter EXPR]
    workload     Run the node/edge/path/sub-graph query workload on a graph
                 --graph FILE [--node N] [--edge N] [--path N] [--subgraph N]
    export       Export a graph (NetFlow v5 / binary store) or a labeled
                 flow store (KDD feature rows)
                 --graph FILE --out FILE [--format nf5|store|store-flows]
                 [--duration SECS=60] [--seed N=1]
                 --flows FILE --out FILE --format kdd
                 (nf5 and store-flows replay the graph as flows; store writes
                 the chunked columnar graph format `csb import` reads back;
                 kdd renders a labeled flow store — e.g. from `csb campaign`
                 — as NSL-KDD-style CSV feature rows with class, campaign,
                 and stage label columns)
    import       Load a csb-store graph file and write it as a text graph
                 --store FILE --out FILE [--expect FILE]
                 (--expect verifies the store matches an existing text graph)
    cluster-sim  Project a generation job onto the simulated Shadow II cluster
                 --algorithm pgpba|pgsk --edges N [--nodes N=60]
                 [--fraction F=2] [--seed-edges N=1940814]
    serve        Run the generation-as-a-service daemon
                 --spool DIR [--listen ADDR=127.0.0.1:7070] [--workers N=2]
                 [--obs-listen ADDR] [--mem-budget-gb F=4] [--max-queue N=256]
                 [--calibrate BENCH_materialize.json]
                 (newline-JSON protocol: submit/status/result/cancel/list/
                 shutdown; jobs checkpoint under the spool and resume
                 byte-identically after a kill; --calibrate feeds the
                 admission cost model from a stamped materialize bench)
    submit       Submit a job to a csb-serve daemon
                 [--server ADDR] [--kind generate|veracity]
                 [--priority high|normal|low] [--wait true] [--timeout-secs N]
                 generate: --seed-graph FILE --size EDGES [--algorithm pgpba]
                 [--fraction F=0.1] [--seed N=1] [--shards N] [--codec raw]
                 [--chunk-records N]
                 veracity: --seed-store FILE --synth-store FILE
    jobs         Show a csb-serve daemon's queue and job table
                 [--server ADDR]
    cancel       Cancel a queued or running job
                 --job ID [--server ADDR]
    shutdown     Stop a csb-serve daemon
                 [--server ADDR] [--mode drain|now]

Set CSB_LOG=warn|info|debug for leveled diagnostics on stderr (silent when
unset).

Run `csb <COMMAND>` with missing flags to see what is required.
";

/// Rewrites the `obs` command family into flat subcommands the `--flag`-only
/// parser accepts: `obs report TRACE ...` becomes `obs-report --trace TRACE
/// ...`. Anything else passes through untouched (Args then reports the usage
/// error).
fn normalize_obs(raw: Vec<String>) -> Vec<String> {
    if raw.first().map(String::as_str) != Some("obs") {
        return raw;
    }
    match raw.get(1).map(String::as_str) {
        Some("report") if raw.len() >= 3 && !raw[2].starts_with("--") => {
            let mut out = vec!["obs-report".to_string(), "--trace".to_string(), raw[2].clone()];
            out.extend(raw[3..].iter().cloned());
            out
        }
        _ => raw,
    }
}

fn main() {
    let raw: Vec<String> = normalize_obs(std::env::args().skip(1).collect());
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let code = match Args::parse(&raw) {
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
        Ok(args) => match commands::run(&args) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::normalize_obs;

    fn raw(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn obs_report_rewrites_to_a_flat_subcommand() {
        assert_eq!(
            normalize_obs(raw(&["obs", "report", "trace.json", "--top", "5"])),
            raw(&["obs-report", "--trace", "trace.json", "--top", "5"])
        );
    }

    #[test]
    fn other_commands_pass_through() {
        assert_eq!(
            normalize_obs(raw(&["generate", "--size", "10"])),
            raw(&["generate", "--size", "10"])
        );
        assert_eq!(normalize_obs(raw(&["obs"])), raw(&["obs"]));
        // `obs report` with no positional stays as-is; Args then reports it.
        assert_eq!(
            normalize_obs(raw(&["obs", "report", "--top", "5"])),
            raw(&["obs", "report", "--top", "5"])
        );
        assert_eq!(normalize_obs(raw(&[])), raw(&[]));
    }
}
