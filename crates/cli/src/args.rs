//! Minimal argument parsing: `--key value` flags and positional
//! subcommands. Hand-rolled so the tool stays dependency-free.
//!
//! A flag collects every following token up to the next `--flag`, so both
//! single-value options (`--size 1000`) and multi-value ones
//! (`--store a.csb b.csb`) parse; single-value accessors reject flags that
//! were given more than one value.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value...` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// First positional argument.
    pub command: String,
    options: HashMap<String, Vec<String>>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl From<ArgError> for csb_store::CsbError {
    fn from(e: ArgError) -> Self {
        csb_store::CsbError::Config(e.0)
    }
}

impl Args {
    /// Parses raw arguments (program name already stripped).
    pub fn parse(raw: &[String]) -> Result<Args, ArgError> {
        let mut it = raw.iter().peekable();
        let command = it.next().ok_or_else(|| ArgError("missing subcommand".into()))?.clone();
        if command.starts_with("--") {
            return Err(ArgError(format!("expected subcommand, got flag {command}")));
        }
        let mut options: HashMap<String, Vec<String>> = HashMap::new();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(ArgError(format!("expected --flag, got {key}")));
            };
            let mut values = Vec::new();
            while let Some(next) = it.peek() {
                if next.starts_with("--") {
                    break;
                }
                values.push(it.next().expect("peeked").clone());
            }
            if values.is_empty() {
                return Err(ArgError(format!("flag --{name} needs a value")));
            }
            if options.insert(name.to_string(), values).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(Args { command, options })
    }

    /// Single-value string option; `Ok(None)` when absent, an error when the
    /// flag was given more than one value.
    fn single(&self, name: &str) -> Result<Option<&str>, ArgError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(values) if values.len() == 1 => Ok(Some(values[0].as_str())),
            Some(values) => {
                Err(ArgError(format!("flag --{name} takes one value, got {}", values.len())))
            }
        }
    }

    /// String option. Returns the first value if the flag was (incorrectly)
    /// given several; the typed accessors report that as an error.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.first()).map(String::as_str)
    }

    /// Every value of a (possibly multi-value) option, empty when absent.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.options.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.single(name)?.ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.single(name)? {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| ArgError(format!("flag --{name}: cannot parse {raw:?}")))
            }
        }
    }

    /// Required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self.require(name)?;
        raw.parse().map_err(|_| ArgError(format!("flag --{name}: cannot parse {raw:?}")))
    }

    /// Rejects unknown flags (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} for `{}` (allowed: {})",
                    self.command,
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&raw(&["generate", "--size", "1000", "--algorithm", "pgpba"]))
            .expect("parse");
        assert_eq!(a.command, "generate");
        assert_eq!(a.get("size"), Some("1000"));
        assert_eq!(a.require("algorithm").expect("present"), "pgpba");
        assert_eq!(a.get_or::<u64>("size", 0).expect("typed"), 1000);
        assert_eq!(a.get_or::<u64>("missing", 7).expect("default"), 7);
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Args::parse(&raw(&["x", "--flag"])).is_err());
        assert!(Args::parse(&raw(&["x", "--a", "1", "--a", "2"])).is_err());
        assert!(Args::parse(&raw(&[])).is_err());
        assert!(Args::parse(&raw(&["--oops", "1"])).is_err());
        assert!(Args::parse(&raw(&["x", "stray"])).is_err());
    }

    #[test]
    fn multi_value_flags_collect_until_the_next_flag() {
        let a = Args::parse(&raw(&["veracity", "--store", "a.csb", "b.csb", "--damping", "0.9"]))
            .expect("parse");
        assert_eq!(a.get_all("store"), &["a.csb".to_string(), "b.csb".to_string()]);
        assert_eq!(a.get_all("missing"), &[] as &[String]);
        assert_eq!(a.get_or::<f64>("damping", 0.85).expect("typed"), 0.9);
        // Single-value accessors refuse a multi-value flag.
        assert!(a.require("store").is_err());
        assert!(a.get_or::<String>("store", String::new()).is_err());
        // The untyped accessor still yields the first value.
        assert_eq!(a.get("store"), Some("a.csb"));
    }

    #[test]
    fn typed_parse_errors() {
        let a = Args::parse(&raw(&["x", "--n", "abc"])).expect("parse");
        assert!(a.get_or::<u64>("n", 1).is_err());
        assert!(a.require_parsed::<u64>("n").is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = Args::parse(&raw(&["x", "--sede", "1"])).expect("parse");
        let err = a.expect_only(&["seed"]).expect_err("typo");
        assert!(err.0.contains("--sede"));
        let b = Args::parse(&raw(&["x", "--seed", "1"])).expect("parse");
        assert!(b.expect_only(&["seed"]).is_ok());
    }
}
