//! The generation-as-a-service subcommands: `csb serve` runs the daemon,
//! `csb submit/jobs/cancel/shutdown` are thin protocol clients.

use crate::args::Args;
use csb_engine::CostModel;
use csb_serve::{Algorithm, Client, JobSpec, Priority, ServeConfig, Server};
use csb_store::CsbError;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

type Result<T> = std::result::Result<T, CsbError>;

fn arg_err(message: impl Into<String>) -> CsbError {
    CsbError::Config(message.into())
}

const DEFAULT_ADDR: &str = "127.0.0.1:7070";

/// `csb serve` — run the daemon until a protocol `shutdown`.
pub fn serve(args: &Args) -> Result<()> {
    args.expect_only(&[
        "spool",
        "listen",
        "workers",
        "obs-listen",
        "mem-budget-gb",
        "max-queue",
        "calibrate",
    ])?;
    let mut cfg = ServeConfig::new(args.require("spool")?);
    cfg.listen = args.get_or("listen", DEFAULT_ADDR.to_string())?;
    cfg.workers = args.get_or("workers", 2usize)?;
    cfg.obs_listen = args.get("obs-listen").map(str::to_string);
    cfg.mem_budget_gb = args.get_or("mem-budget-gb", 4.0)?;
    cfg.max_queue = args.get_or("max-queue", 256usize)?;
    if let Some(path) = args.get("calibrate") {
        cfg.model = CostModel::calibrate_from_bench(path)?;
        eprintln!(
            "serve: cost model calibrated from {path} (pgpba {:.0} ns/edge, pgsk {:.0} ns/edge)",
            cfg.model.pgpba_ns_per_edge, cfg.model.pgsk_ns_per_edge
        );
    }
    let server = Server::start(cfg)?;
    // Machine-parseable: CI and scripts read the bound (possibly ephemeral)
    // port from these lines.
    println!("serve: listening on {}", server.addr());
    if let Some(a) = server.obs_addr() {
        println!("obs: serving http://{a}");
    }
    std::io::stdout().flush().ok();
    server.wait();
    println!("serve: stopped");
    Ok(())
}

fn connect(args: &Args) -> Result<Client> {
    let addr = args.get("server").unwrap_or(DEFAULT_ADDR);
    Client::connect(addr).map_err(|e| arg_err(format!("cannot reach csb-serve at {addr}: {e}")))
}

/// `csb submit` — submit a generate or veracity job, optionally waiting for
/// the result.
pub fn submit(args: &Args) -> Result<()> {
    args.expect_only(&[
        "server",
        "kind",
        "priority",
        "wait",
        "timeout-secs",
        "algorithm",
        "seed-graph",
        "size",
        "fraction",
        "seed",
        "shards",
        "codec",
        "chunk-records",
        "seed-store",
        "synth-store",
    ])?;
    let spec = match args.get("kind").unwrap_or("generate") {
        "generate" => {
            let algorithm = match args.get("algorithm").unwrap_or("pgpba") {
                "pgpba" => Algorithm::Pgpba,
                "pgsk" => Algorithm::Pgsk,
                other => return Err(arg_err(format!("unknown algorithm {other} (pgpba|pgsk)"))),
            };
            let columnar = match args.get("codec") {
                None | Some("raw") => false,
                Some("columnar") => true,
                Some(other) => {
                    return Err(arg_err(format!(
                        "flag --codec: expected raw|columnar, got {other}"
                    )))
                }
            };
            JobSpec::Generate {
                algorithm,
                seed_graph: PathBuf::from(args.require("seed-graph")?),
                size: args.require_parsed("size")?,
                fraction: args.get_or("fraction", 0.1)?,
                seed: args.get_or("seed", 1u64)?,
                shards: args.get_or("shards", 0usize)?,
                columnar,
                chunk_records: match args.get("chunk-records") {
                    None => None,
                    Some(raw) => Some(
                        raw.parse().map_err(|_| arg_err("flag --chunk-records: not a number"))?,
                    ),
                },
            }
        }
        "veracity" => JobSpec::Veracity {
            seed_store: PathBuf::from(args.require("seed-store")?),
            synth_store: PathBuf::from(args.require("synth-store")?),
        },
        other => return Err(arg_err(format!("unknown job kind {other} (generate|veracity)"))),
    };
    let priority = match args.get("priority") {
        None => Priority::Normal,
        Some(p) => Priority::parse(p).ok_or_else(|| {
            arg_err(format!("flag --priority: expected high|normal|low, got {p}"))
        })?,
    };
    let mut client = connect(args)?;
    let job = client.submit(&spec, priority)?;
    println!("submitted {job}");
    if args.get_or("wait", false)? {
        let timeout = Duration::from_secs(args.get_or("timeout-secs", 600u64)?);
        let v = client.result_wait(&job, timeout)?;
        println!("{}", render(&v));
    }
    Ok(())
}

/// `csb jobs` — the daemon's job table.
pub fn jobs(args: &Args) -> Result<()> {
    args.expect_only(&["server"])?;
    let mut client = connect(args)?;
    let snap = client.list()?;
    let depth = snap.get("queue_depth").and_then(|v| v.as_u64()).unwrap_or(0);
    let running = snap.get("running").and_then(|v| v.as_u64()).unwrap_or(0);
    let workers = snap.get("workers").and_then(|v| v.as_u64()).unwrap_or(0);
    println!("queue depth {depth}, running {running}/{workers} workers");
    if let Some(items) = snap.get("jobs").and_then(|v| v.as_arr()) {
        for j in items {
            println!("{}", render(j));
        }
    }
    Ok(())
}

/// `csb cancel` — cancel a queued or running job.
pub fn cancel(args: &Args) -> Result<()> {
    args.expect_only(&["server", "job"])?;
    let job = args.require("job")?;
    let mut client = connect(args)?;
    let done = client.cancel(job)?;
    println!("{job}: {}", if done { "canceled" } else { "cancel requested (running)" });
    Ok(())
}

/// `csb shutdown` — stop the daemon (drain by default).
pub fn shutdown(args: &Args) -> Result<()> {
    args.expect_only(&["server", "mode"])?;
    let drain = match args.get("mode") {
        None | Some("drain") => true,
        Some("now") => false,
        Some(other) => {
            return Err(arg_err(format!("flag --mode: expected drain|now, got {other}")))
        }
    };
    let mut client = connect(args)?;
    client.shutdown(drain)?;
    println!("shutdown {} requested", if drain { "drain" } else { "now" });
    Ok(())
}

/// One human-readable line per job record.
fn render(j: &csb_obs::json::JsonValue) -> String {
    let s = |k: &str| j.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let u = |k: &str| j.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let mut line = format!(
        "{} {:8} {:9} {:6} edges={} restarts={} preemptions={}",
        s("job"),
        s("state"),
        s("kind"),
        s("priority"),
        u("edges"),
        u("restarts"),
        u("preemptions"),
    );
    if let Some(d) = j.get("degree").and_then(|v| v.as_f64()) {
        let p = j.get("pagerank").and_then(|v| v.as_f64()).unwrap_or(0.0);
        line.push_str(&format!(" degree={d:.4} pagerank={p:.4}"));
    }
    if let Some(out) = j.get("out").and_then(|v| v.as_str()) {
        line.push_str(&format!(" out={out}"));
    }
    if let Some(err) = j.get("error").and_then(|v| v.as_str()) {
        line.push_str(&format!(" error={err}"));
    }
    line
}
