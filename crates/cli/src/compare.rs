//! `csb compare` — the cross-generator harness.
//!
//! One invocation scores the whole generator lineup against one seed graph
//! on the Veracity 2.0 metric suite: the seven baseline families of
//! `csb-models` (Erdős-Rényi, Watts-Strogatz, classic BA, Chung-Lu, BTER,
//! SBM, R-MAT) plus the paper's seed-driven PGPBA and PGSK, all at matched
//! scale, all through the same [`VeracityJob`] configuration. Pre-generated
//! store files join the lineup via `--store name=path`, scored out of core.
//!
//! The machine-readable report (`--out`) is a single JSON object:
//!
//! ```json
//! {"report":"compare","version":1,"status":"ok",
//!  "seed_source":"seed.graph","seed_vertices":64,"seed_edges":512,
//!  "size_mult":8,"target_edges":4096,"master_seed":42,
//!  "metrics":["degree","pagerank"],
//!  "generators":[{"name":"pgpba","vertices":70,"edges":4100,
//!                 "gen_secs":0.01,"scores":{"degree":1.2e-3}}]}
//! ```
//!
//! Scores use `{:e}` — the shortest round-trip form — so consumers recover
//! the exact f64 bits by parsing.

use crate::args::Args;
use crate::commands::VeracityCliConfig;
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig, SeedBundle};
use csb_graph::{EdgeProperties, NetflowGraph, VertexId};
use csb_models::{ModelGraph, TargetShape};
use csb_store::CsbError;
use std::time::Instant;

type Result<T> = std::result::Result<T, CsbError>;

fn arg_err(message: impl Into<String>) -> CsbError {
    CsbError::Config(message.into())
}

/// One scored generator in the comparison report.
struct Row {
    name: String,
    vertices: u64,
    edges: u64,
    gen_secs: f64,
    scores: Vec<(&'static str, f64)>,
}

/// A baseline [`ModelGraph`] lifted into the property-graph type the metric
/// suite scores. Topology is what the baselines produce; vertex data is a
/// synthetic 192.168/16 host id and every edge carries placeholder
/// attributes (the baselines are not property-aware — that asymmetry versus
/// PGPBA/PGSK is part of what the comparison shows).
fn to_netflow(g: &ModelGraph) -> NetflowGraph {
    let vertices: Vec<u32> = (0..g.num_vertices).map(|i| 0xC0A8_0000 + i).collect();
    let src: Vec<VertexId> = g.edges.iter().map(|&(s, _)| VertexId(s)).collect();
    let dst: Vec<VertexId> = g.edges.iter().map(|&(_, t)| VertexId(t)).collect();
    let data = vec![EdgeProperties::placeholder(); g.edges.len()];
    NetflowGraph::from_parts(vertices, src, dst, data)
}

/// `csb compare`: run the zoo + PGPBA/PGSK against one seed and emit the
/// comparison report.
pub(crate) fn compare_cmd(args: &Args) -> Result<()> {
    args.expect_only(&[
        "seed-graph",
        "seed-store",
        "size-mult",
        "seed",
        "metrics",
        "damping",
        "max-iters",
        "tolerance",
        "scan-cache-mb",
        "store",
        "smoke",
        "out",
    ])?;
    let smoke: bool = args.get_or("smoke", false)?;
    let size_mult: u64 = args.get_or("size-mult", if smoke { 2 } else { 8 })?;
    if size_mult == 0 {
        return Err(arg_err("flag --size-mult: must be at least 1"));
    }
    let master_seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = VeracityCliConfig::parse(args)?;
    if args.get("metrics").is_none() {
        // The comparison defaults to the full suite: a report that only
        // shows degree shape cannot separate Chung-Lu from PGPBA.
        cfg.metrics = csb_core::Metric::ALL.to_vec();
    }
    let extra: Vec<(String, String)> = args
        .get_all("store")
        .iter()
        .map(|spec| {
            spec.split_once('=')
                .map(|(n, p)| (n.to_string(), p.to_string()))
                .ok_or_else(|| arg_err(format!("flag --store: expected name=path, got {spec:?}")))
        })
        .collect::<Result<_>>()?;

    // The seed graph: from a text graph or a store file, materialized either
    // way — the harness needs its degree sequence to parameterize the
    // sequence-driven baselines.
    let (seed_label, seed_graph) = match (args.get("seed-graph"), args.get("seed-store")) {
        (Some(path), None) => {
            (path.to_string(), csb_graph::io::read_graph(std::fs::File::open(path)?)?)
        }
        (None, Some(path)) => (path.to_string(), csb_store::load_graph(path)?),
        _ => return Err(arg_err("compare needs exactly one of --seed-graph / --seed-store")),
    };
    let seed_degrees: Vec<u64> = seed_graph
        .in_degrees()
        .iter()
        .zip(seed_graph.out_degrees().iter())
        .map(|(a, b)| a + b)
        .collect();
    let target_vertices = u32::try_from(seed_graph.vertex_count() as u64 * size_mult)
        .map_err(|_| arg_err("target vertex count exceeds u32 (lower --size-mult)"))?;
    let target_edges = seed_graph.edge_count() * size_mult as usize;
    // Chung-Lu and BTER get the seed's degree sequence replicated to target
    // scale — the best a sequence-driven model can be given.
    let mut replicated = Vec::with_capacity(seed_degrees.len() * size_mult as usize);
    for _ in 0..size_mult {
        replicated.extend_from_slice(&seed_degrees);
    }
    let shape = TargetShape { vertices: target_vertices, edges: target_edges, degrees: replicated };
    println!(
        "compare: seed {seed_label} ({}v/{}e), target ~{}v/~{}e (x{size_mult}), {} metrics",
        seed_graph.vertex_count(),
        seed_graph.edge_count(),
        target_vertices,
        target_edges,
        cfg.metrics.len()
    );

    let score = |synth: &NetflowGraph| -> Result<Vec<(&'static str, f64)>> {
        let report = cfg.job().seed_graph(&seed_graph).synthetic_graph(synth).run()?;
        Ok(report.scores.iter().map(|s| (s.metric, s.score)).collect())
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut add = |name: String, gen_secs: f64, synth: &NetflowGraph| -> Result<()> {
        rows.push(Row {
            name,
            vertices: synth.vertex_count() as u64,
            edges: synth.edge_count() as u64,
            gen_secs,
            scores: score(synth)?,
        });
        Ok(())
    };

    // The seven baseline families, each seeded from the master seed with a
    // per-model offset so their RNG streams differ.
    for (i, model) in csb_models::zoo().iter().enumerate() {
        let t = Instant::now();
        let g = to_netflow(&model.generate(&shape, master_seed.wrapping_add(i as u64)));
        add(model.name().to_string(), t.elapsed().as_secs_f64(), &g)?;
    }

    // The paper's seed-driven generators, grown from the same seed graph.
    let analysis = csb_core::analysis::SeedAnalysis::of(&seed_graph);
    let bundle = SeedBundle { graph: seed_graph.clone(), analysis };
    let t = Instant::now();
    let ba = pgpba(
        &bundle,
        &PgpbaConfig { desired_size: target_edges as u64, fraction: 0.1, seed: master_seed },
    );
    add("pgpba".to_string(), t.elapsed().as_secs_f64(), &ba)?;
    drop(ba);
    let t = Instant::now();
    let sk_cfg = if smoke {
        // Smoke runs trim the kronfit search; fidelity stays good enough to
        // exercise every metric end to end.
        PgskConfig {
            seed: master_seed,
            kronfit_iterations: 5,
            kronfit_permutation_samples: 100,
            ..PgskConfig::new(target_edges as u64)
        }
    } else {
        PgskConfig { seed: master_seed, ..PgskConfig::new(target_edges as u64) }
    };
    let sk = pgsk(&bundle, &sk_cfg);
    add("pgsk".to_string(), t.elapsed().as_secs_f64(), &sk)?;
    drop(sk);
    drop(bundle);

    // Pre-generated stores join the lineup, scored out of core.
    for (name, path) in &extra {
        use csb_graph::ooc::EdgeScan;
        let mut scan = csb_store::open_scan(path)?;
        let (nv, ne) = (scan.vertex_count()?, scan.edge_count()?);
        drop(scan);
        let report = cfg.job().seed_graph(&seed_graph).synthetic_store(path).run()?;
        rows.push(Row {
            name: name.clone(),
            vertices: nv as u64,
            edges: ne,
            gen_secs: 0.0,
            scores: report.scores.iter().map(|s| (s.metric, s.score)).collect(),
        });
    }

    for row in &rows {
        let scores =
            row.scores.iter().map(|(m, s)| format!("{m} {s:.3e}")).collect::<Vec<_>>().join("  ");
        println!(
            "  {:<16} {:>9}v {:>10}e {:>7.2}s  {scores}",
            row.name, row.vertices, row.edges, row.gen_secs
        );
    }

    if let Some(path) = args.get("out") {
        let metric_list =
            cfg.metrics.iter().map(|m| format!("\"{}\"", m.name())).collect::<Vec<_>>().join(",");
        let generators = rows
            .iter()
            .map(|row| {
                let mut scores = csb_obs::json::JsonObject::new();
                for (m, s) in &row.scores {
                    scores.raw(m, &format!("{s:e}"));
                }
                let mut obj = csb_obs::json::JsonObject::new();
                obj.str("name", &row.name);
                obj.u64("vertices", row.vertices);
                obj.u64("edges", row.edges);
                obj.f64("gen_secs", row.gen_secs, 3);
                obj.raw("scores", &scores.finish());
                obj.finish()
            })
            .collect::<Vec<_>>()
            .join(",");
        let mut obj = csb_obs::json::JsonObject::new();
        obj.str("report", "compare");
        obj.u64("version", 1);
        obj.str("status", "ok");
        obj.str("seed_source", &seed_label);
        obj.u64("seed_vertices", seed_graph.vertex_count() as u64);
        obj.u64("seed_edges", seed_graph.edge_count() as u64);
        obj.u64("size_mult", size_mult);
        obj.u64("target_edges", target_edges as u64);
        obj.u64("master_seed", master_seed);
        obj.raw("metrics", &format!("[{metric_list}]"));
        obj.raw("generators", &format!("[{generators}]"));
        std::fs::write(path, obj.finish() + "\n")?;
        println!("wrote compare report to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;

    fn args(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("parse")
    }

    #[test]
    fn smoke_compare_scores_the_full_lineup() {
        let dir = std::env::temp_dir().join(format!("csb-cli-compare-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pcap = dir.join("t.pcap").to_string_lossy().into_owned();
        let seed_path = dir.join("seed.graph").to_string_lossy().into_owned();
        let extra_store = dir.join("extra.csbstore").to_string_lossy().into_owned();
        let report_path = dir.join("compare.json").to_string_lossy().into_owned();

        run(&args(&["simulate", "--out", &pcap, "--duration", "6", "--rate", "10"]))
            .expect("simulate");
        run(&args(&["seed", "--pcap", &pcap, "--out", &seed_path])).expect("seed");
        run(&args(&["export", "--graph", &seed_path, "--out", &extra_store, "--format", "store"]))
            .expect("export store");
        run(&args(&[
            "compare",
            "--seed-graph",
            &seed_path,
            "--smoke",
            "true",
            "--store",
            &format!("extra={extra_store}"),
            "--out",
            &report_path,
        ]))
        .expect("compare --smoke");

        let json = std::fs::read_to_string(&report_path).expect("report written");
        csb_obs::json::validate_json(&json).expect("report is valid JSON");
        assert!(json.contains("\"report\":\"compare\""));
        assert!(json.contains("\"version\":1"));
        // All nine generators plus the extra store row made it in.
        for name in [
            "erdos_renyi",
            "watts_strogatz",
            "barabasi_albert",
            "chung_lu",
            "bter",
            "sbm",
            "rmat",
            "pgpba",
            "pgsk",
            "extra",
        ] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "missing row {name}");
        }
        // Every metric of the default full suite is present in every row.
        for m in csb_core::Metric::ALL {
            assert_eq!(
                json.matches(&format!("\"{}\":", m.name())).count(),
                10,
                "metric {} missing from some row",
                m.name()
            );
        }
        // The extra store row is the seed itself, so its degree and
        // pagerank scores must be exactly zero (OOC conformance end to end).
        let extra_at = json.find("\"name\":\"extra\"").expect("extra row");
        let degree_at = json[extra_at..].find("\"degree\":").expect("degree") + extra_at + 9;
        let score: f64 =
            json[degree_at..].split([',', '}']).next().expect("value").parse().expect("f64");
        assert_eq!(score, 0.0, "seed-vs-seed degree score must be exactly 0");

        // Usage errors: no seed, both seeds, malformed --store.
        let err = run(&args(&["compare", "--smoke", "true"])).expect_err("no seed");
        assert!(err.to_string().contains("seed-graph"), "got: {err}");
        let err =
            run(&args(&["compare", "--seed-graph", &seed_path, "--seed-store", &extra_store]))
                .expect_err("both seeds");
        assert!(err.to_string().contains("exactly one"), "got: {err}");
        let err = run(&args(&["compare", "--seed-graph", &seed_path, "--store", "no-equals-sign"]))
            .expect_err("bad store spec");
        assert!(err.to_string().contains("name=path"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
