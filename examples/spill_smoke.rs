//! Out-of-core shuffle smoke test: the same `distinct` / `group_by_key` /
//! `reduce_by_key` jobs with the in-memory shuffle and with a zero-byte
//! spill budget (every shuffle goes through `csb-store` spill files), then
//! a Chrome trace showing the `engine.spill` spans.
//!
//! Run with: `cargo run --release --example spill_smoke`

use csb::engine::{JobMetrics, Pdd, SpillConfig, ThreadPool};
use std::collections::HashMap;

fn dataset(spill: SpillConfig) -> Pdd<(u64, u64)> {
    let pairs: Vec<(u64, u64)> = (0..200_000u64).map(|i| (i % 997, i)).collect();
    Pdd::from_vec(pairs, 8, ThreadPool::new(4), JobMetrics::new()).with_spill(spill)
}

fn main() {
    csb::obs::reset();
    csb::obs::enable();

    let spill_all = SpillConfig { budget_bytes: 0, ..SpillConfig::default() };

    // distinct: same set either way.
    let mem: Vec<u64> = dataset(SpillConfig::default()).map(|(k, _)| k).distinct().collect();
    let disk: Vec<u64> = dataset(spill_all.clone()).map(|(k, _)| k).distinct().collect();
    let sorted = |mut v: Vec<u64>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sorted(mem), sorted(disk));

    // group_by_key: same groups either way.
    let groups = |spill: SpillConfig| -> HashMap<u64, Vec<u64>> {
        dataset(spill).group_by_key().collect().into_iter().collect()
    };
    let (mem_g, disk_g) = (groups(SpillConfig::default()), groups(spill_all.clone()));
    assert_eq!(mem_g, disk_g);

    // reduce_by_key: same sums either way.
    let sums = |spill: SpillConfig| -> HashMap<u64, u64> {
        dataset(spill).reduce_by_key(|a, b| a + b).collect().into_iter().collect()
    };
    assert_eq!(sums(SpillConfig::default()), sums(spill_all));

    csb::obs::disable();
    let spans = csb::obs::flush_spans();
    let spills = spans.iter().filter(|s| s.name == "engine.spill").count();
    let metrics = csb::obs::snapshot_metrics();
    let counter =
        |name: &str| metrics.counters.iter().find(|&&(n, _)| n == name).map_or(0, |&(_, v)| v);
    assert!(spills >= 3, "budget 0 must spill every shuffle (saw {spills})");
    println!(
        "all three shuffles agree; {spills} spilled shuffles, {} bytes written / {} read through spill files",
        counter("engine.spill_bytes_written"),
        counter("engine.spill_bytes_read"),
    );

    let trace = "spill_smoke_trace.json";
    csb::obs::export::write_chrome_trace_to(
        std::fs::File::create(trace).expect("create trace"),
        &spans,
    )
    .expect("write trace");
    println!("wrote {trace} — load it at https://ui.perfetto.dev");
}
