//! Schema check for `csb campaign --report` scorecards — the machine-readable
//! side of the labeled-campaign pipeline. CI runs it right after the campaign
//! smoke step:
//!
//! ```text
//! cargo run --release --example campaign_report_check -- report.json 0.5 0.3
//! ```
//!
//! It parses the report with the in-tree JSON reader and asserts the contract
//! consumers rely on: the envelope fields, confusion-matrix counts that add up
//! (every flow scored exactly once, labeled flows = tp + fn), scores in
//! [0, 1], and one per-stage row per (campaign, stage) with a known attack
//! class whose flow counts sum back to the labeled total. The optional second
//! and third arguments are hard floors on precision and recall — the CI smoke
//! uses them to assert the detector actually catches its loud fixed-seed
//! campaigns, not just that a well-formed report landed. Exit code 0 means
//! the report honors the contract; any violation panics with the offending
//! field.

use csb::obs::json::{parse_json, JsonValue};

/// The KDD class names campaign stages can map to (benign rows are `normal`
/// and never appear in the per-stage breakdown).
const STAGE_CLASSES: [&str; 4] = ["probe", "r2l", "c2", "exfil"];

fn str_field<'a>(obj: &'a JsonValue, key: &str) -> &'a str {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?}"))
}

fn u64_field(obj: &JsonValue, key: &str) -> u64 {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing integer field {key:?}"))
}

fn score_field(obj: &JsonValue, key: &str) -> f64 {
    let s = obj
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing score field {key:?}"));
    assert!((0.0..=1.0).contains(&s), "score {key:?} = {s} outside [0, 1]");
    s
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "campaign-report.json".to_string());
    let min_precision: f64 = args.next().map(|a| a.parse().expect("min precision")).unwrap_or(0.0);
    let min_recall: f64 = args.next().map(|a| a.parse().expect("min recall")).unwrap_or(0.0);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read campaign report {path:?}: {e}"));
    let report = parse_json(&text).expect("campaign report is valid JSON");

    // Envelope.
    assert_eq!(str_field(&report, "report"), "campaign", "report kind");
    assert_eq!(u64_field(&report, "version"), 1, "schema version");
    u64_field(&report, "seed");
    let campaigns = u64_field(&report, "campaigns");
    assert!(campaigns > 0, "campaigns must be positive");
    assert!(u64_field(&report, "packets") > 0, "packets must be positive");

    // Confusion matrix: every flow scored exactly once, ground truth adds up.
    let flows = u64_field(&report, "flows");
    let labeled = u64_field(&report, "labeled_flows");
    let (tp, fp) = (u64_field(&report, "tp"), u64_field(&report, "fp"));
    let (fneg, tn) = (u64_field(&report, "fn"), u64_field(&report, "tn"));
    assert!(flows > 0, "flows must be positive");
    assert!(labeled > 0, "a campaign run must label flows");
    assert!(labeled < flows, "benign flows must be present alongside labeled ones");
    assert_eq!(tp + fp + fneg + tn, flows, "confusion matrix must cover every flow once");
    assert_eq!(tp + fneg, labeled, "tp + fn must equal the labeled ground truth");
    u64_field(&report, "detections");

    let precision = score_field(&report, "precision");
    let recall = score_field(&report, "recall");
    score_field(&report, "f1");
    assert!(
        precision >= min_precision,
        "precision {precision} below the required floor {min_precision}"
    );
    assert!(recall >= min_recall, "recall {recall} below the required floor {min_recall}");

    // Per-stage rows: known classes, detected <= flows, no duplicate
    // (campaign, stage) key, and the stage totals sum back to the labeled
    // ground truth — the breakdown must be a partition, not a sample.
    let stages = report.get("stages").and_then(JsonValue::as_arr).expect("stages array");
    assert!(!stages.is_empty(), "stages breakdown is empty");
    let mut seen: Vec<(u64, u64)> = Vec::new();
    let mut stage_total = 0;
    for row in stages {
        let campaign = u64_field(row, "campaign");
        let stage = u64_field(row, "stage");
        assert!(
            campaign >= 1 && campaign <= campaigns,
            "stage row campaign {campaign} out of range"
        );
        let key = (campaign, stage);
        assert!(!seen.contains(&key), "duplicate stage row {key:?}");
        seen.push(key);
        let class = str_field(row, "class");
        assert!(STAGE_CLASSES.contains(&class), "unknown stage class {class:?}");
        let row_flows = u64_field(row, "flows");
        let detected = u64_field(row, "detected");
        assert!(row_flows > 0, "stage row {key:?} has zero flows");
        assert!(detected <= row_flows, "stage row {key:?} detected more flows than it has");
        stage_total += row_flows;
    }
    assert_eq!(stage_total, labeled, "per-stage flow counts must sum to labeled_flows");

    println!(
        "campaign report {path} ok: {campaigns} campaign(s), {labeled}/{flows} flows labeled, \
         precision {precision:.3} recall {recall:.3}"
    );
}
