//! Cluster-scale what-if analysis: run the distributed generators on the
//! real dataflow engine at laptop scale, then project the same jobs onto the
//! paper's Shadow II cluster with the calibrated cost model.
//!
//! Run with: `cargo run --release --example cluster_scaling`

use csb::engine::sim::{GenAlgorithm, GenJob};
use csb::engine::{ClusterConfig, CostModel, SimCluster};
use csb::gen::distributed::{materialize, pgpba_distributed, pgsk_distributed, DistConfig};
use csb::gen::{seed_from_trace, PgpbaConfig, PgskConfig};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    // Laptop-scale run on the real engine.
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 15.0,
        sessions_per_sec: 20.0,
        seed: 3,
        ..TrafficSimConfig::default()
    })
    .generate();
    let seed = seed_from_trace(&trace);
    let dist = DistConfig { partitions: 8, threads: 4, ..DistConfig::default() };

    let target = seed.edge_count() as u64 * 4;
    let (ba_topo, ba_metrics) = pgpba_distributed(
        &seed,
        &PgpbaConfig { desired_size: target, fraction: 0.5, seed: 4 },
        &dist,
    );
    let ba_graph = materialize(&ba_topo, &seed, 5);
    println!(
        "engine PGPBA: {} edges via {} operators ({} records shuffled)",
        ba_graph.edge_count(),
        ba_metrics.len(),
        ba_metrics.total_shuffled()
    );

    let (sk_topo, sk_metrics) = pgsk_distributed(
        &seed,
        &PgskConfig {
            desired_size: target,
            seed: 4,
            kronfit_iterations: 8,
            kronfit_permutation_samples: 200,
        },
        &dist,
    );
    println!(
        "engine PGSK:  {} edges via {} operators ({} records shuffled)",
        sk_topo.edge_count(),
        sk_metrics.len(),
        sk_metrics.total_shuffled()
    );

    // Paper-scale projection on the simulated Shadow II cluster.
    println!("\nprojected on Shadow II (60 nodes, 12 executor cores each):");
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    for (name, alg, edges) in [
        ("PGPBA 9.6B edges", GenAlgorithm::Pgpba { fraction: 2.0 }, 9_600_000_000u64),
        ("PGSK  6.0B edges", GenAlgorithm::Pgsk, 6_000_000_000),
        ("PGPBA 20B edges ", GenAlgorithm::Pgpba { fraction: 2.0 }, 20_000_000_000),
    ] {
        let r = sim.simulate(&GenJob {
            algorithm: alg,
            edges,
            seed_edges: seed.edge_count() as u64,
            with_properties: true,
        });
        println!(
            "  {name}: {:>7.1} s total ({:.1} compute + {:.1} shuffle + {:.1} barrier), \
             {:.0} GB/node, {} iterations",
            r.total_secs,
            r.compute_secs,
            r.shuffle_secs,
            r.barrier_secs,
            r.memory_per_node_gb,
            r.iterations
        );
    }
}
