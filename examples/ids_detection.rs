//! End-to-end intrusion-detection scenario (paper Section IV):
//!
//! 1. Train Table I thresholds on a benign capture.
//! 2. Simulate a fresh capture with injected attacks (SYN flood, DDoS, host
//!    scan, network scan, ICMP flood).
//! 3. Build the property-graph, aggregate traffic patterns per IP, run the
//!    Fig. 4 detection flow, and score against ground truth.
//!
//! Run with: `cargo run --release --example ids_detection`

use csb::ids::{detect, evaluate, train_thresholds};
use csb::net::assembler::FlowAssembler;
use csb::net::packet::{fmt_ip, ip};
use csb::net::traffic::attacks::AttackInjector;
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    // 1. Training capture (benign only).
    let train = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 25.0,
        seed: 10,
        ..TrafficSimConfig::default()
    })
    .generate();
    let thresholds = train_thresholds(&FlowAssembler::assemble(&train.packets));
    println!("trained thresholds:");
    for (name, v) in thresholds.named() {
        println!("  {name:>6} = {v:.1}");
    }

    // 2. Test capture with labeled attacks.
    let sim = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 25.0,
        seed: 20,
        ..TrafficSimConfig::default()
    });
    let mut trace = sim.generate();
    let servers = sim.topology().servers().to_vec();
    let attacker = ip(198, 51, 100, 66);
    let bots: Vec<u32> = (0..120).map(|i| ip(198, 51, 101, (i % 250) as u8)).collect();
    let mut inj = AttackInjector::new(0xBAD);
    trace.merge(inj.syn_flood(attacker, servers[0], 80, 2_000_000, 3_000_000, 20_000));
    trace.merge(inj.ddos(&bots, servers[1], 443, 8_000_000, 3_000_000, 150));
    trace.merge(inj.host_scan(attacker, servers[2], 14_000_000, 3_000_000, 300, 75));
    trace.merge(inj.network_scan(attacker, ip(10, 9, 0, 1), 180, 22, 20_000_000, 3_000_000));
    trace.merge(inj.icmp_flood(attacker, servers[3], 26_000_000, 3_000_000, 20_000));
    trace.sort();

    // 3. Flows -> property-graph -> patterns -> detection. (The graph round
    // trip demonstrates detection over graph-resident data.)
    let flows = FlowAssembler::assemble(&trace.packets);
    let graph = csb::graph::graph_from_flows(&flows);
    println!(
        "\ncapture: {} flows, graph {} vertices / {} edges, {} injected attacks",
        flows.len(),
        graph.vertex_count(),
        graph.edge_count(),
        trace.labels.len()
    );
    let graph_flows = csb::ids::pattern::flows_from_graph(&graph);
    let detections = detect(&graph_flows, &thresholds);

    println!("\ndetections:");
    for d in &detections {
        println!("  {:>12} at {}", d.kind.to_string(), fmt_ip(d.ip));
    }

    // 4. Score.
    let report = evaluate(&detections, &trace.labels);
    println!(
        "\nprecision {:.2}  recall {:.2}  F1 {:.2}  (TP {}, FP {}, FN {})",
        report.precision(),
        report.recall(),
        report.f1(),
        report.true_positives,
        report.false_positives,
        report.false_negatives
    );
}
