//! Quickstart: the full paper pipeline in ~40 lines.
//!
//! 1. Simulate an enterprise network capture (the stand-in for a real PCAP).
//! 2. Run the preliminary steps: flows -> property-graph -> seed analysis.
//! 3. Grow synthetic property-graphs with PGPBA and PGSK.
//! 4. Score their veracity against the seed.
//!
//! Run with: `cargo run --release --example quickstart`

use csb::gen::{pgpba, pgsk, seed_from_trace, Metric, PgpbaConfig, PgskConfig, VeracityJob};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    // 1. A 30-second simulated capture.
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 30.0,
        sessions_per_sec: 40.0,
        seed: 1,
        ..TrafficSimConfig::default()
    })
    .generate();
    let s = trace.summary();
    println!(
        "capture: {} packets, {} hosts, {:.1} s ({} TCP / {} UDP / {} ICMP)",
        s.packets, s.hosts, s.duration_secs, s.tcp, s.udp, s.icmp
    );

    // 2. Preliminary steps (paper Fig. 1).
    let seed = seed_from_trace(&trace);
    println!(
        "seed graph: {} vertices, {} edges",
        seed.graph.vertex_count(),
        seed.graph.edge_count()
    );

    // 3. Grow 20x synthetic graphs with both generators.
    let target = seed.edge_count() as u64 * 20;
    let ba = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 2 });
    let sk = pgsk(&seed, &PgskConfig::new(target));
    println!("PGPBA: {} vertices, {} edges", ba.vertex_count(), ba.edge_count());
    println!("PGSK:  {} vertices, {} edges", sk.vertex_count(), sk.edge_count());

    // 4. Veracity scores (lower = closer to the seed), over the full
    // Veracity 2.0 metric suite.
    for (name, g) in [("PGPBA", &ba), ("PGSK ", &sk)] {
        let report = VeracityJob::new()
            .seed_graph(&seed.graph)
            .synthetic_graph(g)
            .metrics(Metric::ALL)
            .run()
            .expect("in-memory veracity");
        let scores: Vec<String> =
            report.scores.iter().map(|s| format!("{} {:.3e}", s.metric, s.score)).collect();
        println!("{name} veracity: {}", scores.join(", "));
    }
}
