//! Schema check for `csb compare --out` reports — the machine-readable
//! side of the cross-generator harness. CI runs it right after the compare
//! smoke step:
//!
//! ```text
//! cargo run --release --example compare_report_check -- compare.json
//! ```
//!
//! It parses the report with the in-tree JSON reader and asserts the
//! contract consumers rely on: the envelope fields, one row per lineup
//! generator, and a finite score for every selected metric in every row.
//! Exit code 0 means the report is well-formed; any violation panics with
//! the offending field.

use csb::gen::Metric;
use csb::obs::json::{parse_json, JsonValue};

/// The lineup every compare run must cover: the seven baseline families
/// plus the paper's two seed-driven generators. Extra `--store` rows may
/// follow; these nine must always be present.
const LINEUP: [&str; 9] = [
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "chung_lu",
    "bter",
    "sbm",
    "rmat",
    "pgpba",
    "pgsk",
];

fn str_field<'a>(obj: &'a JsonValue, key: &str) -> &'a str {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?}"))
}

fn u64_field(obj: &JsonValue, key: &str) -> u64 {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing integer field {key:?}"))
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "compare.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read compare report {path:?}: {e}"));
    let report = parse_json(&text).expect("compare report is valid JSON");

    // Envelope.
    assert_eq!(str_field(&report, "report"), "compare", "report kind");
    assert_eq!(u64_field(&report, "version"), 1, "schema version");
    assert_eq!(str_field(&report, "status"), "ok", "status");
    assert!(!str_field(&report, "seed_source").is_empty(), "seed_source");
    assert!(u64_field(&report, "seed_vertices") > 0, "seed_vertices must be positive");
    assert!(u64_field(&report, "seed_edges") > 0, "seed_edges must be positive");
    assert!(u64_field(&report, "size_mult") > 0, "size_mult must be positive");
    assert!(u64_field(&report, "target_edges") > 0, "target_edges must be positive");
    u64_field(&report, "master_seed");

    // Selected metrics: non-empty, unique, every name from the known suite.
    let metrics: Vec<&str> = report
        .get("metrics")
        .and_then(JsonValue::as_arr)
        .expect("metrics array")
        .iter()
        .map(|m| m.as_str().expect("metric name"))
        .collect();
    assert!(!metrics.is_empty(), "metrics list is empty");
    for (i, m) in metrics.iter().enumerate() {
        assert!(Metric::ALL.iter().any(|k| k.name() == *m), "unknown metric {m:?} in report");
        assert!(!metrics[..i].contains(m), "duplicate metric {m:?}");
    }

    // Generator rows: the full lineup present, every selected metric scored
    // finite in every row (NaN would serialize as a JSON parse failure
    // upstream, but a consumer contract is worth stating directly).
    let generators = report.get("generators").and_then(JsonValue::as_arr).expect("generators");
    let names: Vec<&str> = generators.iter().map(|g| str_field(g, "name")).collect();
    for required in LINEUP {
        assert!(names.contains(&required), "lineup row {required:?} missing (got {names:?})");
    }
    for row in generators {
        let name = str_field(row, "name");
        assert!(u64_field(row, "vertices") > 0, "row {name:?}: vertices");
        assert!(u64_field(row, "edges") > 0, "row {name:?}: edges");
        let gen_secs = row
            .get("gen_secs")
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("row {name:?}: gen_secs"));
        assert!(gen_secs >= 0.0, "row {name:?}: negative gen_secs");
        let scores = row.get("scores").expect("scores object");
        for m in &metrics {
            let s = scores
                .get(m)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("row {name:?}: metric {m:?} unscored"));
            assert!(s.is_finite(), "row {name:?}: metric {m:?} score {s} not finite");
        }
    }
    println!(
        "compare report {path} ok: {} generators x {} metrics",
        generators.len(),
        metrics.len()
    );
}
