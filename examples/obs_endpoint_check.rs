//! Live-telemetry endpoint checker, used by the CI smoke run: given the
//! address a `csb generate --obs-listen` run printed, fetches `/metrics` and
//! `/status` over raw TCP, validates the Prometheus exposition text and the
//! status JSON with the csb-obs validators, and polls `/status` twice to
//! confirm progress advances monotonically while the job runs.
//!
//! ```text
//! cargo run --release --example obs_endpoint_check -- 127.0.0.1:PORT
//! ```
//!
//! Exits non-zero (panics) on any malformed payload or progress regression.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal HTTP/1.1 GET returning (status-line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Pulls an unsigned integer field out of the /status JSON body.
fn status_u64(body: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = body.find(&key).unwrap_or_else(|| panic!("/status missing {field}: {body}"));
    body[at + key.len()..]
        .split([',', '}'])
        .next()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("/status field {field} is not a u64: {body}"))
}

fn main() {
    let addr = std::env::args().nth(1).expect("usage: obs_endpoint_check ADDR");

    // /metrics must be valid Prometheus 0.0.4 exposition text.
    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "/metrics returned {status}");
    csb_obs::promtext::validate_prometheus_text(&metrics)
        .unwrap_or_else(|e| panic!("/metrics is not valid Prometheus text: {e}\n{metrics}"));
    println!("/metrics ok: {} lines of valid Prometheus text", metrics.lines().count());

    // /status must be valid JSON and progress must never move backwards.
    let (status, first) = http_get(&addr, "/status");
    assert!(status.contains("200"), "/status returned {status}");
    csb_obs::json::validate_json(&first)
        .unwrap_or_else(|e| panic!("/status is not valid JSON: {e}\n{first}"));
    std::thread::sleep(Duration::from_millis(400));
    let (_, second) = http_get(&addr, "/status");
    csb_obs::json::validate_json(&second).expect("second /status snapshot is valid JSON");

    for field in ["edges_done", "chunks_closed", "chunks_durable", "checkpoint_barriers"] {
        let (a, b) = (status_u64(&first, field), status_u64(&second, field));
        assert!(b >= a, "{field} went backwards: {a} -> {b}");
    }
    // The job under test is real, so something must actually be moving (or
    // already finished by the second poll).
    let moving = status_u64(&second, "chunks_closed") > 0
        || status_u64(&second, "edges_done") > 0
        || second.contains("\"done\":true");
    assert!(moving, "no observable progress in /status: {second}");

    // Unknown paths 404, non-GET 405 — the server is a real HTTP citizen.
    let (status, _) = http_get(&addr, "/nope");
    assert!(status.contains("404"), "unknown path returned {status}");
    println!(
        "/status ok: progress is monotonic ({} -> {} chunks closed)",
        status_u64(&first, "chunks_closed"),
        status_u64(&second, "chunks_closed")
    );
}
