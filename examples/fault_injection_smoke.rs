//! Fault-injection smoke: run the distributed PGPBA generator with a 10%
//! per-task failure probability and bounded retries, and verify the output
//! matches a clean (fault-free) run exactly — injected faults cost retries,
//! never correctness.
//!
//! Run with: `cargo run --release --example fault_injection_smoke`
//! (exits non-zero on any mismatch, so CI can gate on it)

use csb::engine::{FaultConfig, RetryPolicy, TaskPolicy};
use csb::gen::distributed::{pgpba_distributed, DistConfig};
use csb::gen::{seed_from_trace, PgpbaConfig};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 10.0,
        sessions_per_sec: 20.0,
        seed: 3,
        ..TrafficSimConfig::default()
    })
    .generate();
    let seed = seed_from_trace(&trace);
    let cfg = PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.5, seed: 4 };

    let clean = DistConfig { partitions: 8, threads: 4, ..DistConfig::default() };
    let (clean_topo, _) = pgpba_distributed(&seed, &cfg, &clean);

    csb::obs::reset();
    csb::obs::enable();
    // 10% of task executions fail; retries are free (no backoff sleep) and
    // bounded high enough that the run always completes.
    let retry = RetryPolicy { max_retries: 60, base_delay_ms: 0, max_delay_ms: 0 };
    let tasks =
        TaskPolicy::new(retry).with_fault(FaultConfig { failure_probability: 0.10, seed: 0xFA117 });
    let faulty = DistConfig { partitions: 8, threads: 4, tasks };
    let (faulty_topo, metrics) = pgpba_distributed(&seed, &cfg, &faulty);
    csb::obs::disable();

    assert_eq!(clean_topo.src, faulty_topo.src, "sources diverged under faults");
    assert_eq!(clean_topo.dst, faulty_topo.dst, "targets diverged under faults");

    let counters = csb::obs::snapshot_metrics().counters;
    let count =
        |name: &str| counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0);
    let failures = count("engine.task_failures");
    let retries = count("engine.task_retries");
    assert!(failures > 0, "a 10% fault rate must trip at least one task");
    assert!(retries >= failures, "every failure must be retried");

    println!(
        "fault-injected PGPBA: {} edges across {} operators — identical to the clean run",
        faulty_topo.src.len(),
        metrics.len()
    );
    println!("injected failures: {failures}, task retries: {retries}, extra output bytes: 0");
}
