//! The full benchmark loop, end to end: the scenario the paper's released
//! suite exists for.
//!
//! 1. Build a seed from a capture.
//! 2. Generate a large synthetic dataset (PGPBA).
//! 3. Scale a small debug dataset back *down* from it (edge sampling).
//! 4. Run the cyber-security query workload (node/edge/path/sub-graph) on
//!    seed, synthetic, and sample, reporting latency scaling.
//! 5. Replay the synthetic dataset as a NetFlow stream and measure the
//!    streaming detector's ingest rate — the "threat detection time"
//!    capability the paper motivates.
//!
//! Run with: `cargo run --release --example benchmark_suite`

use csb::gen::{pgpba, seed_from_trace, PgpbaConfig};
use csb::graph::sample::sample_edges;
use csb::ids::{train_thresholds, StreamingDetector};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb::workloads::{replay_flows, run_workload, WorkloadSpec};
use std::time::Instant;

fn main() {
    // 1. Seed.
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 30.0,
        sessions_per_sec: 40.0,
        seed: 77,
        ..TrafficSimConfig::default()
    })
    .generate();
    let seed = seed_from_trace(&trace);
    println!("seed: {} vertices / {} edges", seed.graph.vertex_count(), seed.graph.edge_count());

    // 2. Scale up 30x.
    let synth = pgpba(
        &seed,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 30, fraction: 0.2, seed: 1 },
    );
    println!("synthetic: {} vertices / {} edges", synth.vertex_count(), synth.edge_count());

    // 3. Scale down to a 5% debug slice.
    let debug_slice = sample_edges(&synth, 0.05, 2);
    println!(
        "debug slice: {} vertices / {} edges",
        debug_slice.vertex_count(),
        debug_slice.edge_count()
    );

    // 4. Query workload on all three.
    println!("\nquery workload (mean latency per family):");
    let spec = WorkloadSpec::default();
    for (name, g) in [("seed", &seed.graph), ("synthetic", &synth), ("debug slice", &debug_slice)] {
        let r = run_workload(g, &spec);
        println!(
            "  {name:>12}: node {:>7.1} us | edge {:>8.1} us | path {:>8.1} us | subgraph {:>9.1} us",
            r.families[0].latency_micros.mean(),
            r.families[1].latency_micros.mean(),
            r.families[2].latency_micros.mean(),
            r.families[3].latency_micros.mean(),
        );
    }

    // 5. Streaming-detection ingest rate over the replayed synthetic data.
    let benign = replay_flows(&seed.graph, 60.0, 3);
    let thresholds = train_thresholds(&benign);
    let stream = replay_flows(&synth, 300.0, 4);
    // Feed the flow stream through the windowed detector by re-synthesizing
    // minimal packets per flow (one per direction), which is what an
    // exporter tap would hand it.
    let mut det = StreamingDetector::new(thresholds, 5_000_000);
    let start = Instant::now();
    let mut packets = 0u64;
    for f in &stream {
        let p = csb::net::Packet {
            ts_micros: f.first_ts_micros,
            src_ip: f.src_ip,
            dst_ip: f.dst_ip,
            src_port: f.src_port,
            dst_port: f.dst_port,
            protocol: f.protocol,
            flags: csb::net::TcpFlags::empty(),
            payload_len: f.out_bytes.min(u32::MAX as u64) as u32,
        };
        det.push(&p);
        packets += 1;
    }
    let alarms = det.finish();
    let wall = start.elapsed().as_secs_f64();
    println!(
        "\nstreaming detector: {packets} flow-packets in {wall:.3} s \
         ({:.0} pkts/s), {} alarms over the replay",
        packets as f64 / wall,
        alarms.len()
    );
}
