//! PCAP workflow: write a simulated capture to the classic libpcap on-disk
//! format, read it back, and export the resulting seed property-graph in the
//! csb text format — the interchange path a benchmark user follows to feed
//! external graph platforms.
//!
//! Run with: `cargo run --release --example pcap_roundtrip`

use csb::gen::seed_from_packets;
use csb::graph::io::write_graph;
use csb::net::pcap::{read_pcap, write_pcap};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 20.0,
        sessions_per_sec: 30.0,
        seed: 9,
        ..TrafficSimConfig::default()
    })
    .generate();

    let dir = std::env::temp_dir().join("csb-example");
    std::fs::create_dir_all(&dir)?;
    let pcap_path = dir.join("capture.pcap");
    let graph_path = dir.join("seed.graph");

    // Write and re-read the capture in the on-disk PCAP format.
    write_pcap(std::fs::File::create(&pcap_path)?, &trace.packets)?;
    let bytes = std::fs::metadata(&pcap_path)?.len();
    let packets = read_pcap(std::fs::File::open(&pcap_path)?)?;
    assert_eq!(packets, trace.packets, "PCAP round trip must be lossless");
    println!("wrote {} packets ({} bytes) to {}", packets.len(), bytes, pcap_path.display());

    // Build the seed and export the property-graph.
    let seed = seed_from_packets(&packets);
    write_graph(std::fs::File::create(&graph_path)?, &seed.graph)?;
    println!(
        "seed graph: {} vertices / {} edges -> {}",
        seed.graph.vertex_count(),
        seed.graph.edge_count(),
        graph_path.display()
    );

    // Show the analysis the generators would consume.
    println!(
        "out-degree: mean {:.2}, max {}; in-bytes: mean {:.0} B, support {} values",
        seed.analysis.out_degree.mean(),
        seed.analysis.out_degree.max(),
        seed.analysis.properties.in_bytes.mean(),
        seed.analysis.properties.in_bytes.support_len()
    );
    Ok(())
}
